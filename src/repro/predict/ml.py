"""The paper's online machine-learning predictor (Section 4.2).

Pipeline: Table 2 features -> degree-2 polynomial basis -> linear model
fitted online by NAG under an asymmetric weighted loss.

Design notes:

* **Training happens at completion time** -- the only moment ``p_j``
  becomes observable -- in completion order, which is how an on-line
  deployment would see the data.  The feature vector is the one captured
  at submission.
* **Targets are learned in hours** (``target_scale`` = 3600 by default):
  NAG normalises feature scales but not the target, and second-scale
  targets need thousands of examples for the weights to grow; hour-scale
  targets converge within a few hundred jobs, which simulation-sized
  traces require.  Loss *reporting* (Table 8, the E-Loss column) is
  always done in seconds via :meth:`repro.predict.loss.LossSpec.value`.
* Predictions are clamped to ``[0, requested_time]`` here and to at
  least ``min_prediction`` by the engine; the raw model output is kept
  on the record for the prediction-analysis figures.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..sim.results import JobRecord
from .base import Predictor, UserHistoryTracker
from .basis import PolynomialBasis
from .features import N_FEATURES, extract_features
from .loss import LossSpec
from .nag import NagOptimizer

__all__ = ["MLPredictor"]


class MLPredictor(Predictor):
    """Online polynomial regression on SWF features under a custom loss."""

    def __init__(
        self,
        loss: LossSpec,
        eta: float = 0.5,
        l2: float = 1e-6,
        target_scale: float = 3600.0,
        forgetting: float = 1.0,
    ) -> None:
        if target_scale <= 0:
            raise ValueError("target_scale must be positive")
        self.loss = loss
        self.target_scale = float(target_scale)
        self.name = f"ml:{loss.key}"
        self._tracker = UserHistoryTracker()
        self._basis = PolynomialBasis(N_FEATURES)
        self._optimizer = NagOptimizer(
            self._basis.dim, eta=eta, l2=l2, forgetting=forgetting
        )
        #: submission-time basis vectors awaiting their completion label.
        self._pending: dict[int, np.ndarray] = {}
        #: job_id -> precomputed static feature row (shared, read-only).
        self._static_rows: Mapping[int, np.ndarray] | None = None
        #: cumulative training loss (seconds-based), for diagnostics.
        self.cumulative_loss = 0.0
        self.n_updates = 0

    def bind_static_features(self, rows: Mapping[int, np.ndarray] | None) -> None:
        """Attach a shared table of precomputed static feature rows.

        Batched campaign runs compute the schedule-independent feature
        columns once per trace (:meth:`repro.core.batch.TraceBundle
        .static_rows`) and bind the table to every predictor replaying
        that trace.  Rows are read-only, keyed by job id, and only valid
        for submission-time prediction of that exact trace; jobs without
        a row fall back to live extraction.  ``None`` unbinds.
        """
        self._static_rows = rows

    # -- Predictor protocol ----------------------------------------------------
    def predict(self, record: JobRecord, now: float) -> float:
        job = record.job
        static = (
            None if self._static_rows is None else self._static_rows.get(job.job_id)
        )
        phi = self._basis.expand(
            extract_features(job, self._tracker, now, static=static)
        )
        self._tracker.on_submit(job, now)
        self._pending[job.job_id] = phi
        raw = self._optimizer.predict(phi) * self.target_scale
        return float(np.clip(raw, 0.0, job.requested_time))

    def estimate(self, record: JobRecord, now: float) -> float:
        # read-only twin of predict(): the features are extracted against
        # the current user history but no submission is registered and no
        # pending label slot is created.  Never consults the bound static
        # rows -- probes may run at a different `now` than the submit time
        # the precomputed day/week angles assume.
        job = record.job
        phi = self._basis.expand(extract_features(job, self._tracker, now))
        raw = self._optimizer.predict(phi) * self.target_scale
        return float(np.clip(raw, 0.0, job.requested_time))

    def on_start(self, record: JobRecord, now: float) -> None:
        self._tracker.on_start(record.job, now)

    def on_finish(self, record: JobRecord, now: float) -> None:
        job = record.job
        # record.runtime honours externally-observed completions
        runtime = record.runtime
        self._tracker.on_finish(job, now, runtime)
        phi = self._pending.pop(job.job_id, None)
        if phi is None:  # job predates this predictor (warm-started runs)
            return
        # The loss (and hence the gradient) lives in *seconds*, the paper's
        # units: the squared/linear branch crossover sits at a 1-second
        # error, so a squared-over/linear-under mix biases the model toward
        # under-prediction (paper Figs. 4-5).  Evaluating the branches in
        # rescaled units would move that crossover and can flip the bias.
        # The constant 1/target_scale chain factor is absorbed by NAG's
        # AdaGrad normalisation.
        f_seconds = self._optimizer.predict(phi) * self.target_scale
        q = float(job.processors)
        grad = self.loss.gradient(f_seconds, runtime, q)
        self._optimizer.update(phi, grad)
        self.cumulative_loss += self.loss.value(f_seconds, runtime, q)
        self.n_updates += 1

    # -- diagnostics -----------------------------------------------------------
    @property
    def weights(self) -> np.ndarray:
        """Current model weights (copy)."""
        return self._optimizer.w.copy()

    def mean_training_loss(self) -> float:
        """Average seconds-based loss over the updates so far."""
        if self.n_updates == 0:
            return 0.0
        return self.cumulative_loss / self.n_updates
