"""Asymmetric, job-weighted loss functions (paper Section 4.2).

The loss of predicting ``f`` when the actual running time is ``p`` is

    L(x_j, f, p) = gamma_j * B_over(f - p)   if f >= p   (over-prediction)
                 = gamma_j * B_under(p - f)  if f <  p   (under-prediction)

with branch bases ``B`` in {squared, linear} and the per-job weight
``gamma_j`` one of the five Table 3 schemes.  That yields the paper's
2 x 2 x 5 = 20 loss configurations.

Naming note: the paper's equation labels the ``f >= p`` branch ``L_u``
("underprediction basis") although it fires on *over*-prediction; its
Eq. (3) and Section 6.4 make the semantics unambiguous (E-Loss is
"squared branch for over-prediction, linear for under-prediction"), so
this module names branches by the direction they fire on.

The E-Loss weight: Eq. (3) prints ``log(r_j . p_j)``, but Table 3 has no
such scheme and Section 6.4 states the E-Loss "uses a weighting factor
that increases with the size of jobs in terms of p and q" -- i.e. the
Table 3 ``log(q_j . p_j)`` (large-area) scheme.  We treat the ``r_j`` as
a typo for ``q_j`` and document the substitution (see DESIGN.md).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator
from dataclasses import dataclass

__all__ = [
    "BRANCHES",
    "WEIGHTS",
    "LossSpec",
    "E_LOSS",
    "SQUARED_LOSS",
    "all_loss_specs",
    "weight_factor",
]

# -- branch bases --------------------------------------------------------------


def _squared(z: float) -> float:
    return z * z


def _squared_grad(z: float) -> float:
    return 2.0 * z


def _linear(z: float) -> float:
    return z


def _linear_grad(z: float) -> float:
    return 1.0


#: branch name -> (value, derivative), both defined for z >= 0.
BRANCHES: dict[str, tuple[Callable[[float], float], Callable[[float], float]]] = {
    "squared": (_squared, _squared_grad),
    "linear": (_linear, _linear_grad),
}

# -- Table 3 weighting schemes ---------------------------------------------------

_WEIGHT_FLOOR = 1e-2


def _w_constant(p: float, q: float) -> float:
    return 1.0


def _w_short_wide(p: float, q: float) -> float:
    """5 + log(q/p): short jobs with large requests should be well-predicted."""
    return 5.0 + math.log(q / p)


def _w_long_narrow(p: float, q: float) -> float:
    """5 + log(p/q): long jobs with small requests should be well-predicted."""
    return 5.0 + math.log(p / q)


def _w_small_area(p: float, q: float) -> float:
    """11 + log(1/(q*p)): jobs of small area should be well-predicted."""
    return 11.0 + math.log(1.0 / (q * p))


def _w_large_area(p: float, q: float) -> float:
    """log(q*p): jobs of large area should be well-predicted (E-Loss weight)."""
    return math.log(q * p)


#: weight name -> gamma(p, q).  Constants per the paper "ensure positivity
#: with typical running times"; a floor guards the atypical ones.
WEIGHTS: dict[str, Callable[[float, float], float]] = {
    "constant": _w_constant,
    "short-wide": _w_short_wide,
    "long-narrow": _w_long_narrow,
    "small-area": _w_small_area,
    "large-area": _w_large_area,
}


def weight_factor(scheme: str, p: float, q: float) -> float:
    """Evaluate a Table 3 weight, floored to stay positive."""
    if p <= 0 or q <= 0:
        raise ValueError(f"weights need p > 0 and q > 0, got p={p}, q={q}")
    try:
        fn = WEIGHTS[scheme]
    except KeyError:
        raise KeyError(
            f"unknown weight scheme {scheme!r}; known: {', '.join(WEIGHTS)}"
        ) from None
    return max(fn(p, q), _WEIGHT_FLOOR)


@dataclass(frozen=True)
class LossSpec:
    """One of the paper's 20 loss configurations."""

    over: str  # branch basis applied when f >= p
    under: str  # branch basis applied when f < p
    weight: str  # Table 3 weighting scheme

    def __post_init__(self) -> None:
        if self.over not in BRANCHES:
            raise KeyError(f"unknown branch {self.over!r}; known: {', '.join(BRANCHES)}")
        if self.under not in BRANCHES:
            raise KeyError(f"unknown branch {self.under!r}; known: {', '.join(BRANCHES)}")
        if self.weight not in WEIGHTS:
            raise KeyError(
                f"unknown weight scheme {self.weight!r}; known: {', '.join(WEIGHTS)}"
            )

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``sq-lin-large-area`` (the E-Loss)."""
        short = {"squared": "sq", "linear": "lin"}
        return f"{short[self.over]}-{short[self.under]}-{self.weight}"

    def value(self, f: float, p: float, q: float) -> float:
        """Loss of predicting ``f`` for a job with actual (p, q)."""
        gamma = weight_factor(self.weight, p, q)
        if f >= p:
            base, _ = BRANCHES[self.over]
            return gamma * base(f - p)
        base, _ = BRANCHES[self.under]
        return gamma * base(p - f)

    def gradient(self, f: float, p: float, q: float) -> float:
        """dL/df at prediction ``f`` (subgradient 0 conventions at f == p)."""
        gamma = weight_factor(self.weight, p, q)
        if f >= p:
            _, deriv = BRANCHES[self.over]
            return gamma * deriv(f - p)
        _, deriv = BRANCHES[self.under]
        return -gamma * deriv(p - f)


#: The paper's winning E-Loss: squared over-prediction branch, linear
#: under-prediction branch, large-area weighting (Eq. 3).
E_LOSS = LossSpec(over="squared", under="linear", weight="large-area")

#: Plain symmetric squared loss with unit weights (standard regression).
SQUARED_LOSS = LossSpec(over="squared", under="squared", weight="constant")


def all_loss_specs() -> Iterator[LossSpec]:
    """The 20 loss configurations of the campaign (Table 5), fixed order."""
    for over in ("squared", "linear"):
        for under in ("squared", "linear"):
            for weight in ("constant", "short-wide", "long-narrow", "small-area", "large-area"):
                yield LossSpec(over=over, under=under, weight=weight)
