"""Per-user online quantile predictor (extension baseline).

The paper's E-Loss drives the learned model toward *small* predictions
(Section 6.4); the natural non-learning analogue is "predict a low
quantile of the user's past runtimes".  This predictor estimates a
running quantile per user with the classic online pinball-loss update
and serves as an ablation comparator: it captures the under-prediction
bias without the feature model.
"""

from __future__ import annotations

from ..sim.results import JobRecord
from .base import Predictor, UserHistoryTracker

__all__ = ["QuantilePredictor"]


class QuantilePredictor(Predictor):
    """Predicts an online estimate of a per-user runtime quantile.

    The estimate follows the stochastic sub-gradient of the pinball loss:
    move up by ``eta * q`` when the job ran longer than the estimate,
    down by ``eta * (1 - q)`` otherwise, with a step proportional to the
    user's running runtime scale.  Falls back to the requested time until
    the user has history.
    """

    def __init__(self, quantile: float = 0.25, eta: float = 0.2) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if eta <= 0:
            raise ValueError("eta must be positive")
        self.quantile = float(quantile)
        self.eta = float(eta)
        self.name = f"quantile{quantile:g}"
        self._tracker = UserHistoryTracker()
        self._estimate: dict[int, float] = {}

    def predict(self, record: JobRecord, now: float) -> float:
        self._tracker.on_submit(record.job, now)
        estimate = self._estimate.get(record.job.user)
        if estimate is None:
            return record.requested_time
        return estimate

    def estimate(self, record: JobRecord, now: float) -> float:
        # read-only twin of predict(): no submission is registered
        estimate = self._estimate.get(record.job.user)
        if estimate is None:
            return record.requested_time
        return estimate

    def on_start(self, record: JobRecord, now: float) -> None:
        self._tracker.on_start(record.job, now)

    def on_finish(self, record: JobRecord, now: float) -> None:
        job = record.job
        # record.runtime honours externally-observed completions
        runtime = record.runtime
        self._tracker.on_finish(job, now, runtime)
        user = job.user
        current = self._estimate.get(user)
        if current is None:
            # initialise below the first observation, per the quantile bias
            self._estimate[user] = runtime * self.quantile
            return
        state = self._tracker.state(user)
        scale = max(
            state.sum_runtimes / max(1, state.n_completed), 1.0
        )
        step = self.eta * scale
        if runtime > current:
            current += step * self.quantile
        else:
            current -= step * (1.0 - self.quantile)
        self._estimate[user] = max(current, 1.0)
