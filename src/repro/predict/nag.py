"""Normalized Adaptive Gradient (NAG) online optimiser.

Implements the NAG algorithm of Ross, Mineiro & Langford, *Normalized
Online Learning* (UAI 2013), which the paper uses to fit its regression
model: a per-coordinate scale-normalised variant of AdaGrad that is
robust to adversarially scaled features.  This matters here because
several Table 2 features are unbounded and unnormalisable online (e.g.
Break Time).

Update for example ``x`` with scalar loss derivative ``dL/df`` at
``f = w . x``:

1. for coordinates where ``|x_i|`` exceeds the largest scale ``s_i`` seen
   so far: squash the weight ``w_i <- w_i * s_i^2 / x_i^2`` and raise
   ``s_i <- |x_i|`` (keeps accumulated decisions consistent under the
   new scale);
2. accumulate the normalised example norm ``N <- N + sum_i x_i^2/s_i^2``;
3. per-coordinate gradient ``g_i = dL/df * x_i (+ l2 ridge term)``,
   accumulate ``G_i <- G_i + g_i^2``;
4. step ``w_i <- w_i - eta * sqrt(t/N) * g_i / (s_i * sqrt(G_i))``.

An ``l2`` ridge penalty (the paper's ``lambda ||w||^2``) enters through
the gradient.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NagOptimizer"]


class NagOptimizer:
    """Scale-invariant online gradient descent (NAG)."""

    def __init__(
        self,
        dim: int,
        eta: float = 0.5,
        l2: float = 0.0,
        forgetting: float = 1.0,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if eta <= 0:
            raise ValueError("eta must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting must be in (0, 1]")
        self.dim = int(dim)
        self.eta = float(eta)
        self.l2 = float(l2)
        #: decay applied to the accumulated gradient statistics before each
        #: update; < 1 makes the model favour recent jobs (the paper's
        #: footnote-2 variant: "weigh differently the jobs to favor recent
        #: ones").
        self.forgetting = float(forgetting)
        self.w = np.zeros(dim)
        self._scale = np.zeros(dim)  # s_i: largest |x_i| seen
        self._grad_sq = np.zeros(dim)  # G_i: accumulated squared gradients
        self._norm = 0.0  # N: accumulated normalised example norms
        self.t = 0  # examples processed

    def predict(self, x: np.ndarray) -> float:
        """Model output ``w . x``."""
        return float(self.w @ x)

    def update(self, x: np.ndarray, dloss_df: float) -> None:
        """One online step given the derivative of the loss at ``w . x``."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {x.shape}")
        self.t += 1
        ax = np.abs(x)

        # 1. Rescale weights whose coordinate just revealed a larger range.
        grew = ax > self._scale
        if np.any(grew):
            old = self._scale[grew]
            new = ax[grew]
            ratio = np.where(new > 0, old / new, 0.0)
            self.w[grew] *= ratio * ratio
            self._scale[grew] = new

        # 2. Normalised example norm (coordinates never seen stay out).
        seen = self._scale > 0
        if np.any(seen):
            self._norm += float(np.sum((x[seen] / self._scale[seen]) ** 2))

        # 3. Gradient with ridge term (after optional forgetting decay,
        # which shortens the adaptive memory and favours recent examples).
        if self.forgetting < 1.0:
            self._grad_sq *= self.forgetting
        grad = dloss_df * x
        if self.l2 > 0:
            grad = grad + 2.0 * self.l2 * self.w
        self._grad_sq += grad * grad

        # 4. Adaptive, normalised step.
        if self._norm <= 0:
            return
        active = seen & (self._grad_sq > 0)
        if not np.any(active):
            return
        rate = self.eta * np.sqrt(self.t / self._norm)
        self.w[active] -= (
            rate * grad[active] / (self._scale[active] * np.sqrt(self._grad_sq[active]))
        )

    def state_summary(self) -> dict[str, float]:
        """Diagnostics for tests and reports."""
        return {
            "t": float(self.t),
            "weight_norm": float(np.linalg.norm(self.w)),
            "seen_coordinates": float(np.count_nonzero(self._scale)),
            "normalizer": self._norm,
        }
