"""Running-time prediction: baselines, features, losses, NAG, ML predictor."""

from .base import Predictor, UserHistoryTracker, UserState
from .baselines import (
    ClairvoyantPredictor,
    RecentAveragePredictor,
    RequestedTimePredictor,
)
from .basis import PolynomialBasis
from .features import FEATURE_NAMES, N_FEATURES, extract_features
from .loss import (
    BRANCHES,
    E_LOSS,
    SQUARED_LOSS,
    WEIGHTS,
    LossSpec,
    all_loss_specs,
    weight_factor,
)
from .ml import MLPredictor
from .nag import NagOptimizer
from .quantile import QuantilePredictor

__all__ = [
    "Predictor",
    "UserHistoryTracker",
    "UserState",
    "ClairvoyantPredictor",
    "RecentAveragePredictor",
    "RequestedTimePredictor",
    "PolynomialBasis",
    "FEATURE_NAMES",
    "N_FEATURES",
    "extract_features",
    "BRANCHES",
    "E_LOSS",
    "SQUARED_LOSS",
    "WEIGHTS",
    "LossSpec",
    "all_loss_specs",
    "weight_factor",
    "MLPredictor",
    "NagOptimizer",
    "QuantilePredictor",
    "make_predictor",
]


def make_predictor(spec) -> Predictor:
    """Construct a predictor from the unified component registry.

    Accepts a legacy string (``clairvoyant``, ``requested``, ``ave2`` /
    ``ave<k>``, ``quantile<q>``, ``ml:<over>-<under>-<weight>`` with
    over/under in {sq, lin} and weight a Table 3 scheme, e.g.
    ``ml:sq-lin-large-area`` -- the E-Loss), a parameterized spec dict
    like ``{"name": "ml", "params": {"over": "sq", "under": "lin",
    "weight": "large-area", "eta": 0.3}}``, or a ready
    :class:`repro.spec.ComponentSpec`.
    """
    from ..spec.components import predictor_registry

    return predictor_registry().build(spec)
