"""Running-time prediction: baselines, features, losses, NAG, ML predictor."""

from .base import Predictor, UserHistoryTracker, UserState
from .baselines import (
    ClairvoyantPredictor,
    RecentAveragePredictor,
    RequestedTimePredictor,
)
from .basis import PolynomialBasis
from .features import FEATURE_NAMES, N_FEATURES, extract_features
from .loss import (
    BRANCHES,
    E_LOSS,
    SQUARED_LOSS,
    WEIGHTS,
    LossSpec,
    all_loss_specs,
    weight_factor,
)
from .ml import MLPredictor
from .nag import NagOptimizer
from .quantile import QuantilePredictor

__all__ = [
    "Predictor",
    "UserHistoryTracker",
    "UserState",
    "ClairvoyantPredictor",
    "RecentAveragePredictor",
    "RequestedTimePredictor",
    "PolynomialBasis",
    "FEATURE_NAMES",
    "N_FEATURES",
    "extract_features",
    "BRANCHES",
    "E_LOSS",
    "SQUARED_LOSS",
    "WEIGHTS",
    "LossSpec",
    "all_loss_specs",
    "weight_factor",
    "MLPredictor",
    "NagOptimizer",
    "QuantilePredictor",
    "make_predictor",
]


def make_predictor(name: str) -> Predictor:
    """Construct a predictor from its registry name.

    Names: ``clairvoyant``, ``requested``, ``ave2`` (or ``ave<k>``), and
    ``ml:<over>-<under>-<weight>`` with over/under in {sq, lin} and
    weight a Table 3 scheme, e.g. ``ml:sq-lin-large-area`` (the E-Loss).
    """
    if name == "clairvoyant":
        return ClairvoyantPredictor()
    if name == "requested":
        return RequestedTimePredictor()
    if name.startswith("ave"):
        k = int(name[3:])
        return RecentAveragePredictor(k=k)
    if name.startswith("quantile"):
        return QuantilePredictor(quantile=float(name[8:]))
    if name.startswith("ml:"):
        key = name[3:]
        long = {"sq": "squared", "lin": "linear"}
        parts = key.split("-", 2)
        if len(parts) != 3 or parts[0] not in long or parts[1] not in long:
            raise KeyError(f"malformed ML predictor key {name!r}")
        return MLPredictor(
            LossSpec(over=long[parts[0]], under=long[parts[1]], weight=parts[2])
        )
    raise KeyError(f"unknown predictor {name!r}")
