"""Distributed campaign dispatch.

A campaign's cell matrix -- :class:`repro.spec.CellSpec` cells, e.g. the
paper's 128+ triples by 6 logs by N replicas, or any grid expanded from
an experiment spec file -- is embarrassingly parallel, and the JSONL
cell cache (:mod:`repro.core.campaign`) was designed to be
merge-friendly.  This package turns the single-host process-pool fan-out
into a sharded, restartable, multi-host system:

* :mod:`repro.dist.shards`  -- partitions the cell matrix into balanced
  shards using per-cell cost estimates seeded from ``BENCH_engine.json``;
* :mod:`repro.dist.fsqueue` -- a serverless work queue in a shared
  directory: atomic claim-by-rename, mtime-heartbeat leases, capped
  retries.  N workers on N hosts cooperate with no coordinator server;
* :mod:`repro.dist.worker`  -- the worker loop behind ``repro worker``:
  claims shards, streams cells through the shared cell runner, renews
  its lease, appends per-shard JSONL result caches;
* :mod:`repro.dist.broker`  -- the dispatch abstraction behind
  ``run_campaign``: :class:`LocalBroker` (in-process pool, the classic
  path) and :class:`FsQueueBroker` (the fault-tolerant coordinator:
  enqueue, monitor, re-enqueue expired leases, merge shard caches);
* :mod:`repro.dist.merge`   -- shard-cache merging with duplicate-cell
  dedup and ``CACHE_VERSION``/``ENGINE_VERSION`` conflict detection.
"""

from .broker import Broker, FsQueueBroker, LocalBroker, resolve_backend
from .fsqueue import FsQueue, Lease, LeaseLost, QueueVersionError
from .merge import (
    CellConflictError,
    MergeReport,
    MergeVersionError,
    iter_cache_records,
    merge_caches,
)
from .shards import CellCostModel, Shard, load_bench_cost_model, plan_shards
from .worker import WorkerStats, run_worker

__all__ = [
    "Broker",
    "FsQueueBroker",
    "LocalBroker",
    "resolve_backend",
    "FsQueue",
    "Lease",
    "LeaseLost",
    "QueueVersionError",
    "CellConflictError",
    "MergeReport",
    "MergeVersionError",
    "iter_cache_records",
    "merge_caches",
    "CellCostModel",
    "Shard",
    "load_bench_cost_model",
    "plan_shards",
    "WorkerStats",
    "run_worker",
]
