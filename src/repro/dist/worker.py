"""The distributed worker loop behind ``repro worker --queue DIR``.

A worker is a dumb, stateless claimer: point any number of them (on any
number of hosts) at a queue directory and they cooperatively drain it.

Per shard, a worker

1. **claims** it by atomic rename (:meth:`repro.dist.fsqueue.FsQueue.claim`);
2. **skips** cells already proven by earlier attempts (it re-reads every
   result file of the shard, so a crashed predecessor's partial work is
   kept, not redone);
3. **streams** the remaining cells through the shared cell runner
   (:func:`repro.core.run.run_cell`), appending each result to its own
   per-attempt JSONL cache the moment it finishes;
4. **renews** its lease after every cell -- if the renewal discovers the
   lease was re-queued (this worker was presumed dead), it abandons the
   shard immediately; everything already written remains harvestable;
5. **completes** the shard by renaming the lease into ``done/``.

Workers exit when the coordinator posts a ``DONE``/``STOP`` marker, when
``max_shards`` is reached, or after ``max_idle`` seconds without
claimable work.  Every lifecycle step is appended to the worker's own
progress stream (``progress/<worker>.jsonl``) for
:func:`repro.core.reporting.format_dist_progress`.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field

from ..core.campaign import ProgressLog, iter_cache_records
from ..obs import JsonlTraceSink, Telemetry, get_logger
from ..obs.telemetry import NOOP
from .fsqueue import (
    DEFAULT_LEASE_TTL,
    FsQueue,
    Lease,
    LeaseLost,
    QueueVersionError,
    sanitize_id,
)

__all__ = ["WorkerStats", "run_worker", "default_worker_id"]

_log = get_logger("dist.worker")


def default_worker_id() -> str:
    """``<host>-<pid>``: unique enough for a queue directory."""
    return sanitize_id(f"{socket.gethostname()}-{os.getpid()}")


@dataclass
class WorkerStats:
    """What one worker did before exiting."""

    worker_id: str = ""
    shards: int = 0
    cells: int = 0
    cached_cells: int = 0
    abandoned: int = 0
    reason: str = ""
    #: shard_ids completed, in order.
    completed: list[str] = field(default_factory=list)


class _Heartbeat(threading.Thread):
    """Renews one lease in the background while cells simulate.

    Per-cell renewals alone would let any *single* cell longer than
    ``lease_ttl`` look like a worker death (the coordinator would steal
    the shard from under a perfectly healthy simulation); the heartbeat
    thread keeps the claimed file's mtime fresh for as long as the cell
    takes.  A renewal that discovers the lease was re-queued anyway sets
    :attr:`lost`, which the cell loop converts into an orderly abandon.
    """

    def __init__(
        self,
        queue: FsQueue,
        lease: Lease,
        interval: float,
        telemetry: Telemetry = NOOP,
    ) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{lease.shard_id}")
        self.queue = queue
        self.lease = lease
        self.interval = interval
        self.telemetry = telemetry
        self.lost = False
        # NB: not named _stop -- that would shadow threading.Thread's
        # internal _stop() method and break join()
        self._halt = threading.Event()

    def run(self) -> None:
        last_beat = time.monotonic()
        while not self._halt.wait(self.interval):
            try:
                self.queue.renew(self.lease)
            except LeaseLost:
                self.lost = True
                return
            except OSError:
                continue  # transient fs hiccup; retry next beat
            if self.telemetry.enabled:
                now = time.monotonic()
                # age of the heartbeat when it landed: how close the
                # lease's mtime came to looking dead before this renewal
                self.telemetry.observe(
                    "worker.heartbeat.age.seconds", now - last_beat
                )
                self.telemetry.inc("worker.lease.renewals")
                last_beat = now

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=10.0)


def run_worker(
    queue_dir: str,
    worker_id: str | None = None,
    poll_interval: float = 0.5,
    max_idle: float | None = None,
    max_shards: int | None = None,
    echo: bool = False,
    telemetry_dir: str | None = None,
) -> WorkerStats:
    """Claim-and-simulate until the queue is finished (see module doc).

    ``max_idle=None`` waits for a DONE/STOP marker forever; a float exits
    after that many seconds without claimable work (0 drains and exits).
    ``telemetry_dir`` enables per-worker counters (claims, simulated vs
    cached cells, lease renewals, heartbeat ages, per-cell seconds) and
    writes ``metrics-worker-<id>.{json,prom}`` plus a span trace there on
    clean exit -- a SIGKILLed worker leaves no snapshot, which is exactly
    the signal the smoke reconciliation relies on.
    """
    from ..core.run import run_cell

    queue = FsQueue(queue_dir)
    # Workers may be launched before the coordinator initialises the
    # queue (common in scripted deployments): wait for it, bounded by
    # the same idle budget that bounds an empty queue.
    waited = 0.0
    while not os.path.exists(queue.meta_path):
        if max_idle is not None and waited >= max_idle:
            raise FileNotFoundError(
                f"no queue at {queue.root} after {waited:.0f}s "
                f"(is the coordinator running?)"
            )
        time.sleep(poll_interval)
        waited += poll_interval
    meta = queue.check_versions()  # refuse version-skewed queues up front
    worker_id = sanitize_id(worker_id or default_worker_id())
    stats = WorkerStats(worker_id=worker_id)
    component = f"worker-{worker_id}"
    if telemetry_dir:
        tele = Telemetry(
            component=component,
            trace=JsonlTraceSink(
                os.path.join(telemetry_dir, f"trace-{component}.jsonl")
            ),
        )
    else:
        tele = NOOP
    progress_path = queue.progress_path(worker_id)
    progress = ProgressLog(progress_path, echo=echo, worker=worker_id, append=True)
    progress.emit({"event": "worker_start", "queue": queue.root,
                   "lease_ttl": meta.get("lease_ttl")})
    _log.info("worker %s serving queue %s", worker_id, queue.root)
    tele.event("worker_start", queue=queue.root)
    # the progress file was just written on the *queue's* filesystem, so
    # its mtime is a start-of-service stamp on the same clock that
    # stamps DONE markers -- immune to cross-host wall-clock skew
    start_stamp = os.stat(progress_path).st_mtime
    idle_since: float | None = None
    try:
        while True:
            # Honour only a STOP posted after this worker started serving
            # (the same filesystem-stamp freshness rule DONE gets below).
            # A stale marker left by a failed campaign on a reused queue
            # directory is the next coordinator's to clear -- a worker
            # that deserts on sight of it races that cleanup and can
            # leave the new campaign with no one to drain the queue.
            stop_stamp = queue.signal_mtime("STOP")
            if stop_stamp is not None and stop_stamp > start_stamp:
                stats.reason = "stop"
                break
            lease = queue.claim(worker_id)
            if lease is None:
                done = queue.read_signal("DONE")
                if done is not None:
                    # Only honour a DONE that (a) was posted after this
                    # worker started serving -- judged by filesystem
                    # mtimes, both stamped by the shared queue fs, so
                    # host clock skew cannot confuse it -- and (b)
                    # concludes the newest planned generation.  A stale
                    # marker on a reused queue directory predates the
                    # worker: it must not make the fleet desert a
                    # campaign the coordinator is about to (re)enqueue;
                    # such workers keep waiting (bounded by max_idle).
                    done_stamp = queue.signal_mtime("DONE")
                    fresh = done_stamp is not None and done_stamp >= start_stamp - 1.0
                    meta_generation = int(queue.read_meta().get("generation", 0))
                    # A marker without a generation (legacy, or debris on
                    # a reused directory) cannot prove it concludes the
                    # current campaign; such workers keep waiting too.
                    # The coordinator always stamps the generation.
                    concluded = int(done.get("generation", -1)) >= meta_generation
                    if fresh and concluded:
                        stats.reason = "done"
                        break
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if max_idle is not None and now - idle_since >= max_idle:
                    stats.reason = "idle"
                    break
                time.sleep(poll_interval)
                continue
            idle_since = None
            # re-read per claim: a coordinator reopening the queue with a
            # different --lease-ttl rewrites the metadata, and heartbeats
            # must track the clock it actually reaps with
            try:
                lease_ttl = float(
                    queue.read_meta().get("lease_ttl", DEFAULT_LEASE_TTL)
                )
            except (OSError, ValueError):
                lease_ttl = float(meta.get("lease_ttl", DEFAULT_LEASE_TTL))
            _run_shard(
                queue, lease, run_cell, progress, stats,
                heartbeat_interval=max(0.05, lease_ttl / 4.0),
                telemetry=tele,
            )
            if max_shards is not None and stats.shards >= max_shards:
                stats.reason = "max-shards"
                break
    finally:
        progress.emit(
            {
                "event": "worker_exit",
                "reason": stats.reason or "error",
                "shards": stats.shards,
                "cells": stats.cells,
                "cached": stats.cached_cells,
                "abandoned": stats.abandoned,
            }
        )
        progress.close()
        _log.info(
            "worker %s exiting (%s): %d shard(s), %d cell(s) simulated",
            worker_id, stats.reason or "error", stats.shards, stats.cells,
        )
        if tele.enabled:
            tele.event("worker_exit", reason=stats.reason or "error")
            if telemetry_dir:
                tele.write(telemetry_dir)
            tele.close()
    return stats


def _run_shard(
    queue: FsQueue,
    lease: Lease,
    run_cell,
    progress: ProgressLog,
    stats: WorkerStats,
    heartbeat_interval: float = DEFAULT_LEASE_TTL / 4.0,
    telemetry: Telemetry = NOOP,
) -> None:
    """Simulate one claimed shard; never raises on a lost lease.

    Cells run group-major by trace identity: the planner already emits
    trace-grouped shards, and regrouping here also batches manifests
    from older planners, so each shard pays one trace materialisation
    per group through the process-shared bundle cache.
    """
    from ..core.batch import group_cells
    from ..core.campaign import ResultCache, cell_token
    from ..spec import SPEC_VERSION, CellSpec

    manifest = lease.spec
    shard_spec_version = manifest.get("spec_version", SPEC_VERSION)
    if shard_spec_version != SPEC_VERSION:
        # a manifest this code cannot faithfully re-key: abandoning the
        # lease lets the coordinator's retry/version machinery surface it
        raise QueueVersionError(
            f"shard {lease.shard_id} carries spec_version "
            f"{shard_spec_version!r}, this worker speaks {SPEC_VERSION}"
        )
    cells = [CellSpec.from_obj(cell) for cell in manifest["cells"]]
    grouped = group_cells(cells)
    telemetry.inc("worker.claims")
    telemetry.event(
        "claim",
        shard=lease.shard_id,
        attempt=lease.attempt,
        cells=len(cells),
        trace_groups=len(grouped),
    )
    _log.debug(
        "claimed shard %s (attempt %d, %d cells in %d trace group(s))",
        lease.shard_id, lease.attempt, len(cells), len(grouped),
    )
    progress.emit(
        {
            "event": "claim",
            "shard": lease.shard_id,
            "attempt": lease.attempt,
            "cells": len(cells),
            "trace_groups": len(grouped),
        }
    )
    # Earlier attempts may have proved some cells before dying: harvest
    # every result file of this shard so retries only pay the remainder.
    proven: set[str] = set()
    for path in queue.result_paths(lease.shard_id):
        records, _torn = iter_cache_records(path)
        proven.update(token for _lineno, token, _value in records)

    cache = ResultCache(queue.result_path(lease.shard_id, lease.attempt))
    started = time.monotonic()
    ran = 0
    heartbeat = _Heartbeat(queue, lease, heartbeat_interval, telemetry=telemetry)
    heartbeat.start()
    try:
        for spec in (spec for _key, group in grouped for spec in group):
            if heartbeat.lost:
                raise LeaseLost(f"lease on {lease.shard_id} re-queued mid-shard")
            token = cell_token(spec)
            if token in proven or cache.get(token) is not None:
                stats.cached_cells += 1
                telemetry.inc("worker.cells.cached")
                continue
            cell_t0 = time.monotonic()
            value = run_cell(spec)
            cell_seconds = time.monotonic() - cell_t0
            cache.put(token, value)
            ran += 1
            stats.cells += 1
            telemetry.inc("worker.cells.simulated")
            telemetry.observe("worker.cell.seconds", cell_seconds)
            queue.renew(lease)  # heartbeat; raises LeaseLost if re-queued
            telemetry.inc("worker.lease.renewals")
            progress.emit(
                {
                    "event": "cell",
                    "shard": lease.shard_id,
                    "log": spec.workload.log,
                    "triple": spec.label,
                    "seed": spec.workload.seed,
                    "avebsld": value,
                    "seconds": round(cell_seconds, 4),
                }
            )
        heartbeat.stop()
        queue.complete(lease)
    except LeaseLost:
        stats.abandoned += 1
        telemetry.inc("worker.shards.abandoned")
        telemetry.event(
            "shard_abandoned",
            shard=lease.shard_id,
            attempt=lease.attempt,
            cells_run=ran,
        )
        _log.warning(
            "abandoning shard %s (attempt %d): lease re-queued",
            lease.shard_id, lease.attempt,
        )
        progress.emit(
            {
                "event": "shard_abandoned",
                "shard": lease.shard_id,
                "attempt": lease.attempt,
                "cells_run": ran,
            }
        )
        return
    finally:
        heartbeat.stop()
        cache.close()
    stats.shards += 1
    stats.completed.append(lease.shard_id)
    shard_seconds = time.monotonic() - started
    telemetry.inc("worker.shards.completed")
    telemetry.observe("worker.shard.seconds", shard_seconds)
    telemetry.event(
        "shard_done",
        shard=lease.shard_id,
        attempt=lease.attempt,
        cells_run=ran,
        seconds=round(shard_seconds, 3),
    )
    progress.emit(
        {
            "event": "shard_done",
            "shard": lease.shard_id,
            "attempt": lease.attempt,
            "cells_run": ran,
            "cells_cached": len(cells) - ran,
            "seconds": round(shard_seconds, 3),
        }
    )
