"""Dispatch backends for the campaign runner.

``run_campaign`` plans which cells need simulating and records results;
*how* the pending cells get simulated is a :class:`Broker`:

* :class:`LocalBroker` -- the classic single-host
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out, refactored
  behind the interface (and still the default);
* :class:`FsQueueBroker` -- the distributed coordinator: shard the
  cells, enqueue them on a :class:`~repro.dist.fsqueue.FsQueue`, let any
  number of ``repro worker`` processes (local or remote hosts sharing
  the directory) drain them, re-queue shards whose leases expire
  (crashed worker == capped automatic retry), harvest per-shard result
  caches incrementally, and finally verify the merged whole.

Both brokers deliver results through the same ``on_result`` callback, so
the caller's caching/progress/resume machinery is backend-agnostic, and
a campaign interrupted under one backend resumes under the other.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed

from ..core.batch import DEFAULT_MAX_BATCH, plan_batches, run_batch_report
from ..core.campaign import parse_cache_record
from ..obs import get_logger
from ..obs.telemetry import NOOP, Telemetry
from ..spec import CellSpec
from .fsqueue import DEFAULT_LEASE_TTL, DEFAULT_MAX_ATTEMPTS, FsQueue
from .merge import merge_caches
from .shards import DEFAULT_CELLS_PER_SHARD, load_bench_cost_model, plan_shards

__all__ = ["Broker", "LocalBroker", "FsQueueBroker", "resolve_backend"]

#: on_result(cell_spec, avebsld, wall_seconds | None)
ResultCallback = Callable[..., None]
#: emit(progress_event_dict)
EmitCallback = Callable[[dict], None]

_log = get_logger("dist.coordinator")


class Broker(ABC):
    """Strategy for simulating a batch of campaign cell specs."""

    @abstractmethod
    def dispatch(
        self,
        cells: Sequence[CellSpec],
        on_result: ResultCallback,
        emit: EmitCallback | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        """Simulate every cell, calling ``on_result`` as each finishes.

        ``on_result(spec, score)`` or ``on_result(spec, score, seconds)``
        when the broker measured the cell's wall time.  Must deliver each
        cell exactly once (dedup is the broker's job) and raise if any
        cell cannot be produced.  ``telemetry`` (optional) receives the
        broker's own dispatch counters; brokers that run cells in this
        process tree also fold per-cell engine metrics into it.
        """

    def map_tasks(self, fn: Callable, payloads: Sequence) -> list:
        """Apply a picklable ``fn`` to each payload, preserving order.

        The generic fan-out companion to :meth:`dispatch` for work that
        is not a campaign cell -- today the training rollouts of
        :mod:`repro.learn.rollout`, whose results (gradient vectors) do
        not fit the cell-score result channel.  ``fn`` must be a
        module-level function and each payload plain data, so any
        executor can ship them.  The base implementation runs serially;
        pool-backed brokers override it.  Brokers whose transport cannot
        carry arbitrary payloads (the filesystem queue speaks shard
        manifests only) inherit the serial fallback rather than failing.
        """
        return [fn(payload) for payload in payloads]


class LocalBroker(Broker):
    """Single-host process-pool fan-out (the classic campaign path).

    Cells dispatch in trace-pure batches (:func:`repro.core.batch
    .plan_batches`): one pool submission carries up to ``max_batch``
    same-trace cells, so the child process materialises the shared trace
    bundle once per batch instead of once per cell.  ``max_batch=1``
    restores exact per-cell submission.
    """

    def __init__(
        self, workers: int | None = None, max_batch: int | None = None
    ) -> None:
        self.workers = workers
        self.max_batch = DEFAULT_MAX_BATCH if max_batch is None else max_batch

    def dispatch(
        self,
        cells: Sequence[CellSpec],
        on_result: ResultCallback,
        emit: EmitCallback | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        tele = telemetry if telemetry is not None else NOOP
        with_tel = tele.enabled
        # bench-seeded estimates (the shard planner's model) let the
        # telemetry compare each cell's actual seconds to its estimate
        cost_model = load_bench_cost_model() if with_tel else None

        def deliver(spec: CellSpec, score: float, report: dict) -> None:
            seconds = report.get("seconds")
            if with_tel:
                tele.inc("campaign.cells.simulated")
                if seconds is not None:
                    tele.observe("campaign.cell.seconds", seconds)
                est = cost_model.cell_cost(spec)
                tele.observe("campaign.cell.est_seconds", est)
                snap = report.get("telemetry")
                if snap:
                    tele.merge_snapshot(snap)
                tele.event(
                    "cell",
                    log=spec.workload.log,
                    label=spec.label,
                    seed=spec.workload.seed,
                    seconds=None if seconds is None else round(seconds, 6),
                    est_seconds=round(est, 4),
                    avebsld=score,
                )
            on_result(spec, score, seconds)

        jobs = list(cells)
        workers = self.workers
        if workers is None:
            cpu = os.cpu_count() or 1
            workers = max(1, min(cpu - 1, 16))
        # never batch so coarsely that the pool has fewer batches than
        # workers: a tiny campaign still spreads over every worker
        cap = max(1, min(self.max_batch, -(-len(jobs) // max(1, workers))))
        batches = plan_batches(jobs, max_batch=cap)
        _log.info(
            "local dispatch: %d cell(s) in %d trace-pure batch(es) over "
            "%d worker(s)",
            len(jobs), len(batches), workers,
        )
        if with_tel:
            tele.inc("campaign.batches", len(batches))
        if workers <= 1 or len(jobs) <= 2:
            for batch in batches:
                for spec, score, report in run_batch_report(
                    batch, with_telemetry=with_tel
                ):
                    deliver(spec, score, report)
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(run_batch_report, batch, with_telemetry=with_tel)
                    for batch in batches
                ]
                for future in as_completed(futures):
                    for spec, score, report in future.result():
                        deliver(spec, score, report)

    def map_tasks(self, fn: Callable, payloads: Sequence) -> list:
        """Order-preserving process-pool map (serial for tiny batches)."""
        payloads = list(payloads)
        workers = self.workers
        if workers is None:
            cpu = os.cpu_count() or 1
            workers = max(1, min(cpu - 1, 16))
        workers = min(workers, len(payloads)) if payloads else 1
        if workers <= 1 or len(payloads) <= 2:
            return [fn(payload) for payload in payloads]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, payloads))


class FsQueueBroker(Broker):
    """Fault-tolerant coordinator over a filesystem work queue.

    The coordinator owns planning and bookkeeping only -- it never
    simulates.  Crash-restart safe: a restarted coordinator first
    harvests every result already on disk, re-plans only the remainder
    under a fresh generation prefix, and clears stale ``todo/`` entries
    (in-flight claims of presumed-dead workers are left to the lease
    machinery; their duplicate results dedup by token).
    """

    def __init__(
        self,
        queue_dir: str,
        n_shards: int | None = None,
        cells_per_shard: int = DEFAULT_CELLS_PER_SHARD,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        poll_interval: float = 0.5,
        timeout: float | None = None,
        bench_path: str | None = None,
    ) -> None:
        if not queue_dir:
            raise ValueError("FsQueueBroker needs a queue directory")
        self.queue_dir = queue_dir
        self.n_shards = n_shards
        self.cells_per_shard = cells_per_shard
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.bench_path = bench_path

    # -- the coordinator loop -------------------------------------------------
    def dispatch(
        self,
        cells: Sequence[CellSpec],
        on_result: ResultCallback,
        emit: EmitCallback | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        from ..core.campaign import cell_token

        tele = telemetry if telemetry is not None else NOOP
        emit = emit or (lambda event: None)
        queue = FsQueue.create(self.queue_dir, lease_ttl=self.lease_ttl)
        queue.check_versions()
        # a fresh campaign reopens the queue: a stale DONE would make
        # workers exit instantly, a stale STOP (left by a previous
        # failed campaign) would poison the directory forever
        queue.clear_signal("DONE")
        queue.clear_signal("STOP")

        token_map = {cell_token(spec): spec for spec in cells}
        seen: set[str] = set()
        tailer = _ResultTailer(queue)

        def harvest() -> int:
            fresh = 0
            for token, value in tailer.poll():
                if token in seen or token not in token_map:
                    continue
                seen.add(token)
                on_result(token_map[token], value)
                fresh += 1
            if fresh:
                tele.inc("dist.cells.harvested", fresh)
            return fresh

        # A previous coordinator may have died with results on disk that
        # never reached the canonical cache: harvest before planning.
        harvest()
        remaining = [
            token_map[token] for token in token_map if token not in seen
        ]
        if not remaining:
            queue.signal(
                "DONE",
                {"generation": int(queue.read_meta().get("generation", 0))},
            )
            emit({"event": "dist_done", "shards": 0, "cells": 0})
            return

        stale = queue.clear_todo()
        generation = queue.next_generation()
        shards = plan_shards(
            remaining,
            n_shards=self.n_shards,
            cells_per_shard=self.cells_per_shard,
            bench_path=self.bench_path,
            prefix=f"g{generation}",
        )
        for shard in shards:
            queue.enqueue(shard.manifest())
        own = {shard.shard_id for shard in shards}
        tele.inc("dist.shards.enqueued", len(shards))
        tele.inc("dist.cells.enqueued", len(remaining))
        tele.event(
            "enqueue",
            generation=generation,
            shards=len(shards),
            cells=len(remaining),
        )
        _log.info(
            "enqueued %d shard(s) / %d cell(s) on %s (generation %d)",
            len(shards), len(remaining), queue.root, generation,
        )
        emit(
            {
                "event": "enqueue",
                "generation": generation,
                "shards": len(shards),
                "cells": len(remaining),
                "stale_dropped": stale,
                "est_costs": [round(s.est_cost, 2) for s in shards],
            }
        )

        started = time.monotonic()
        while True:
            harvest()
            for shard_id, attempt, disposition in queue.requeue_expired(
                lease_ttl=self.lease_ttl, max_attempts=self.max_attempts
            ):
                requeued = disposition == "requeued"
                tele.inc("dist.requeues" if requeued else "dist.shards.failed")
                _log.warning(
                    "shard %s (attempt %d) lease expired: %s",
                    shard_id, attempt, disposition,
                )
                emit(
                    {
                        "event": "requeue" if requeued else "shard_failed",
                        "shard": shard_id,
                        "attempt": attempt,
                    }
                )
            done = queue.done_ids()
            failed = queue.failed_ids() & own
            if failed:
                queue.signal("STOP")
                raise RuntimeError(
                    f"{len(failed)} shard(s) exhausted their "
                    f"{self.max_attempts} attempts: {sorted(failed)}; "
                    f"see {queue.root}/progress for worker logs"
                )
            if own <= done:
                break
            if (
                self.timeout is not None
                and time.monotonic() - started > self.timeout
            ):
                outstanding = sorted(own - done)
                raise RuntimeError(
                    f"distributed campaign timed out after {self.timeout:.0f}s "
                    f"with {len(outstanding)} shard(s) outstanding: "
                    f"{outstanding[:5]}...  are any `repro worker "
                    f"--queue {queue.root}` processes running?"
                )
            time.sleep(self.poll_interval)

        # Authoritative merge: dedups across attempts, detects value
        # conflicts and version skew loudly, and catches any result the
        # incremental tailer missed.
        merged, report = merge_caches(queue.result_paths(), check_versions=True)
        for token, value in merged.items():
            if token in token_map and token not in seen:
                seen.add(token)
                on_result(token_map[token], value)
        missing = [token for token in token_map if token not in seen]
        if missing:
            raise RuntimeError(
                f"all shards report done but {len(missing)} cell(s) never "
                f"surfaced in {queue.root}/results -- first: {missing[0]!r}"
            )
        queue.signal("DONE", {"generation": generation})
        tele.inc("dist.campaigns.completed")
        tele.event(
            "dist_done",
            shards=len(shards),
            cells=len(remaining),
            merge=report.describe(),
        )
        _log.info(
            "distributed campaign done: %d shard(s), %d cell(s); %s",
            len(shards), len(remaining), report.describe(),
        )
        emit(
            {
                "event": "dist_done",
                "shards": len(shards),
                "cells": len(remaining),
                "merge": report.describe(),
            }
        )


class _ResultTailer:
    """Incrementally read appended lines from every shard result file.

    Remembers a byte offset per file and consumes only complete lines,
    so a worker's in-flight append (no trailing newline yet) is left for
    the next poll instead of being mis-parsed.
    """

    def __init__(self, queue: FsQueue) -> None:
        self.queue = queue
        self._offsets: dict[str, int] = {}

    def poll(self) -> list[tuple[str, float]]:
        out: list[tuple[str, float]] = []
        for path in self.queue.result_paths():
            offset = self._offsets.get(path, 0)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size <= offset:
                continue
            try:
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read(size - offset)
            except OSError:
                continue
            consumed = chunk.rfind(b"\n") + 1
            if consumed == 0:
                continue  # no complete line yet
            self._offsets[path] = offset + consumed
            for line in chunk[:consumed].decode("utf-8", "replace").splitlines():
                line = line.strip()
                if not line:
                    continue
                parsed = parse_cache_record(line)
                if parsed is None:
                    continue  # torn line; the final merge re-validates
                out.append(parsed)
        return out


def resolve_backend(
    backend: Broker | str,
    workers: int | None = None,
    queue_dir: str | None = None,
    **fsqueue_kwargs,
) -> Broker:
    """Turn ``run_campaign``'s backend argument into a broker instance.

    Accepts a ready broker, ``"local"`` (uses ``workers``) or
    ``"fsqueue"`` (needs ``queue_dir``; extra kwargs reach
    :class:`FsQueueBroker`).
    """
    if isinstance(backend, Broker):
        return backend
    if backend == "local":
        return LocalBroker(workers=workers)
    if backend == "fsqueue":
        if not queue_dir:
            raise ValueError("backend 'fsqueue' requires queue_dir (--queue)")
        return FsQueueBroker(queue_dir, **fsqueue_kwargs)
    raise ValueError(f"unknown campaign backend {backend!r} (local|fsqueue)")
