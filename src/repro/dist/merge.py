"""Merging per-shard JSONL result caches into one canonical cache.

Every worker attempt appends ``{"token": ..., "value": ...}`` lines to
its own shard cache (the same record format as the single-host
:class:`repro.core.campaign.ResultCache`).  Merging is where the
distributed campaign's correctness guarantees concentrate:

* **dedup** -- the same cell may legitimately appear in several files
  (a crashed attempt's partial file plus its retry, or a zombie worker
  racing its re-queued replacement).  Simulations are deterministic, so
  duplicates must carry identical values; they collapse to one line.
* **conflict detection** -- a duplicate token with a *different* value
  means non-deterministic or version-skewed workers; the merge refuses
  loudly (:class:`CellConflictError`) rather than pick a winner.
* **version fencing** -- cache tokens embed ``CACHE_VERSION`` and
  ``ENGINE_VERSION`` (``v5|e2|...``).  Records written by other code
  versions raise :class:`MergeVersionError`; results from semantically
  different engines never co-mingle.  Pre-spec-redesign rows
  (``LEGACY_CACHE_VERSION``) can opt into re-keying via
  ``upgrade_legacy=True`` (the ``repro merge --upgrade-legacy`` flag),
  which routes them through
  :func:`repro.core.campaign.upgrade_legacy_token` instead of refusing.
* **torn-tail tolerance** -- a crash mid-append leaves a truncated last
  line; such lines are counted and skipped, never fatal.

The merged output is written atomically, sorted by token -- a canonical
form that is byte-identical however the cells were sharded, raced or
retried, which is exactly what the distributed smoke test asserts
against a single-host run.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..core.campaign import iter_cache_records
from ..obs import get_logger

_log = get_logger("dist.merge")

__all__ = [
    "MergeReport",
    "MergeVersionError",
    "CellConflictError",
    "iter_cache_records",
    "merge_caches",
    "write_canonical",
]


class MergeVersionError(RuntimeError):
    """A shard cache record was produced by incompatible code."""


class CellConflictError(RuntimeError):
    """Two shard caches disagree on the value of the same cell."""


@dataclass
class MergeReport:
    """What a merge saw, for logging and assertions."""

    files: int = 0
    records: int = 0
    unique: int = 0
    duplicates: int = 0
    torn_lines: int = 0
    #: v4 rows re-keyed (``upgrade_legacy``) or skipped as un-upgradable.
    legacy_upgraded: int = 0
    legacy_skipped: int = 0
    per_file: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        legacy = ""
        if self.legacy_upgraded or self.legacy_skipped:
            legacy = (
                f", {self.legacy_upgraded} legacy row(s) upgraded"
                f", {self.legacy_skipped} legacy row(s) skipped"
            )
        return (
            f"merged {self.files} cache file(s): {self.unique} unique cells "
            f"from {self.records} records ({self.duplicates} duplicate(s), "
            f"{self.torn_lines} torn line(s) skipped{legacy})"
        )


def _expand_inputs(inputs: Iterable[str]) -> list[str]:
    """Files stay files; directories expand to their sorted ``*.jsonl``.

    An explicitly named input that does not exist is an error (a typo'd
    path must not silently merge to an empty cache); files discovered by
    directory expansion are only racily guaranteed, so downstream reads
    tolerate their disappearance.
    """
    paths: list[str] = []
    for item in inputs:
        if os.path.isdir(item):
            paths.extend(
                os.path.join(item, name)
                for name in sorted(os.listdir(item))
                if name.endswith(".jsonl")
            )
        elif os.path.exists(item):
            paths.append(item)
        else:
            raise FileNotFoundError(f"merge input {item!r} does not exist")
    return paths


def _check_token_version(
    token: str, path: str, lineno: int, prefix: str | None
) -> None:
    if prefix is not None and not token.startswith(prefix):
        raise MergeVersionError(
            f"{path}:{lineno}: cell token {token!r} does not match this "
            f"code's version prefix {prefix!r}; it was produced by a "
            f"different CACHE_VERSION/ENGINE_VERSION and must not be "
            f"merged (re-run the cells or merge with matching code)"
        )


def merge_caches(
    inputs: Sequence[str],
    out_path: str | None = None,
    check_versions: bool = True,
    upgrade_legacy: bool = False,
) -> tuple[dict[str, float], MergeReport]:
    """Merge shard caches; returns ``(cells, report)``.

    ``inputs`` are cache files and/or directories of ``*.jsonl`` shard
    caches.  With ``check_versions`` every token must carry the running
    code's ``v<CACHE_VERSION>|e<ENGINE_VERSION>|`` prefix.
    ``upgrade_legacy`` re-keys pre-redesign (v4 tuple-keyed) rows to
    their spec-digest tokens where the same-engine lowering exists,
    skipping (and counting) the rest.  ``out_path`` (optional) receives
    the canonical sorted merge, written atomically.
    """
    from ..core.campaign import LEGACY_CACHE_VERSION, upgrade_legacy_token

    prefix = _version_prefix() if check_versions else None
    legacy_prefix = f"v{LEGACY_CACHE_VERSION}|"
    cells: dict[str, float] = {}
    first_seen: dict[str, str] = {}
    report = MergeReport()
    for path in _expand_inputs(inputs):
        if not os.path.exists(path):
            continue
        report.files += 1
        records, torn = iter_cache_records(path)
        for lineno, token, value in records:
            if upgrade_legacy and token.startswith(legacy_prefix):
                upgraded = upgrade_legacy_token(token)
                if upgraded is None:
                    report.legacy_skipped += 1
                    continue
                token = upgraded
                report.legacy_upgraded += 1
            _check_token_version(token, path, lineno, prefix)
            if token in cells:
                if cells[token] != value:
                    raise CellConflictError(
                        f"cell {token!r} has conflicting values: "
                        f"{cells[token]!r} (from {first_seen[token]}) vs "
                        f"{value!r} (from {path}:{lineno}); shard caches "
                        f"must come from deterministic same-version runs"
                    )
                report.duplicates += 1
            else:
                cells[token] = value
                first_seen[token] = path
        if torn:
            _log.warning("skipped %d torn line(s) in %s", torn, path)
        report.per_file[path] = len(records)
        report.records += len(records)
        report.torn_lines += torn
    report.unique = len(cells)
    _log.info("%s", report.describe())
    if out_path is not None:
        write_canonical(cells, out_path)
    return cells, report


def write_canonical(cells: dict[str, float], out_path: str) -> None:
    """Write cells sorted by token, atomically (tmp file + rename).

    The byte layout matches :class:`repro.core.campaign.ResultCache`
    appends, so a canonical merge is itself a valid warm cache.
    """
    directory = os.path.dirname(out_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{out_path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        for token in sorted(cells):
            fh.write(json.dumps({"token": token, "value": cells[token]}) + "\n")
    os.replace(tmp, out_path)


def _version_prefix() -> str:
    from ..core.campaign import CACHE_VERSION
    from ..sim.engine import ENGINE_VERSION

    return f"v{CACHE_VERSION}|e{ENGINE_VERSION}|"
