"""Shard planning: partition a campaign's cell specs into balanced units.

A *shard* is the unit of distributed dispatch: a named batch of
:class:`repro.spec.CellSpec` cells that one worker claims, simulates and
reports as a whole.  Shards should be

* **coarse enough** that queue overhead (claim, lease renewal, result
  files) is amortised over many simulations, and
* **balanced enough** that the campaign's wall time is not dominated by
  one unlucky worker.

Balance needs per-cell cost estimates.  Simulation time scales with the
job count and differs by scheduler variant and by whether a correction
mechanism is active (EXPIRE storms); those ratios are exactly what
``BENCH_engine.json`` measures on every CI run, so the planner seeds its
cost model from the benchmark report when one is available and falls
back to calibrated constants otherwise.  Cells are then distributed with
the classic LPT (longest processing time first) greedy heuristic --
applied to **trace-pure chunks** rather than single cells, so every
shard keeps same-trace cells together and the worker's shared
:class:`repro.core.batch.BundleCache` pays each trace materialisation
once per shard instead of once per cell.

Shard manifests -- the JSON documents enqueued for workers -- carry each
cell in its canonical spec encoding plus the coordinator's
``CACHE_VERSION`` / ``ENGINE_VERSION`` / ``SPEC_VERSION``, so
version-skewed workers refuse the work instead of producing
mis-keyed results.
"""

from __future__ import annotations

import heapq
import json
import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..core.batch import workload_key
from ..obs import get_logger
from ..spec import SPEC_VERSION, CellSpec

_log = get_logger("dist.shards")

__all__ = [
    "Shard",
    "CellCostModel",
    "load_bench_cost_model",
    "plan_shards",
    "DEFAULT_CELLS_PER_SHARD",
]

#: Default shard granularity when the caller does not fix a shard count.
DEFAULT_CELLS_PER_SHARD = 16


@dataclass(frozen=True)
class Shard:
    """A named, costed batch of campaign cell specs."""

    shard_id: str
    cells: tuple[CellSpec, ...]
    est_cost: float
    #: distinct trace-identity keys (canonical workload JSON, see
    #: :func:`repro.core.batch.workload_key`) in shard cell order --
    #: how many traces a worker materialises to run this shard.
    trace_keys: tuple[str, ...] = ()

    def manifest(self) -> dict:
        """The JSON document enqueued for workers.

        Each cell travels in its canonical spec form -- everything a
        worker needs to recompute the cache token and run the cell, with
        no side-channel campaign config.  ``trace_keys`` names the
        shard's trace-identity groups so workers (and humans reading the
        queue) see the batching structure without re-deriving it.
        """
        from ..core.campaign import CACHE_VERSION
        from ..sim.engine import ENGINE_VERSION

        return {
            "shard_id": self.shard_id,
            "cells": [cell.to_obj() for cell in self.cells],
            "est_cost": round(self.est_cost, 4),
            "trace_keys": list(self.trace_keys),
            "cache_version": CACHE_VERSION,
            "engine_version": ENGINE_VERSION,
            "spec_version": SPEC_VERSION,
        }


@dataclass(frozen=True)
class CellCostModel:
    """Relative simulation cost by scheduler and correction load.

    Units are arbitrary (only ratios matter for balance): ``weight(cell)
    = scheduler_weight * n_jobs * correction_factor``.
    """

    #: per-job weight by scheduler key (fallback used for unknown ones).
    scheduler_weights: dict[str, float] = field(
        default_factory=lambda: {"easy": 1.0, "easy-sjbf": 1.0, "conservative": 1.6}
    )
    #: multiplier when the cell runs a correction mechanism.
    correction_factor: float = 3.0
    #: where the weights came from ("defaults" or the bench file path).
    source: str = "defaults"

    def cell_cost(self, cell: CellSpec) -> float:
        """Estimated cost of one cell."""
        scheduler = cell.scheduler
        order = scheduler.param_dict.get("order", "fcfs")
        key = scheduler.name if order == "fcfs" else f"{scheduler.name}-{order}"
        base = self.scheduler_weights.get(
            key,
            self.scheduler_weights.get(
                scheduler.name, max(self.scheduler_weights.values())
            ),
        )
        factor = self.correction_factor if cell.corrector is not None else 1.0
        return base * cell.workload.n_jobs * factor


def load_bench_cost_model(path: str | None = None) -> CellCostModel:
    """Cost model seeded from a ``BENCH_engine.json`` report.

    Per-scheduler weights are the benchmark's measured per-job seconds of
    the profile path; the correction factor is the per-job ratio of the
    correction-heavy scenario to its correction-free twin.  Any missing
    file, unreadable JSON or absent scenario falls back to the calibrated
    defaults -- planning must never fail because a benchmark artifact is
    stale.
    """
    default = CellCostModel()
    if path is None:
        path = os.path.join(os.getcwd(), "BENCH_engine.json")
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
        per_job: dict[str, float] = {}
        for scenario in report.get("scenarios", []):
            n_jobs = scenario.get("trace", {}).get("n_jobs")
            seconds = scenario.get("profile_seconds")
            if not n_jobs or not seconds or seconds <= 0:
                _log.warning(
                    "bench cost seeding: scenario %r in %s has unusable "
                    "n_jobs=%r / profile_seconds=%r; using the "
                    "scheduler-weight default for it",
                    scenario.get("scenario", "<unnamed>"), path, n_jobs, seconds,
                )
                continue
            per_job[scenario.get("scenario", "")] = float(seconds) / float(n_jobs)
        weights = dict(default.scheduler_weights)
        if "easy/wide" in per_job:
            weights["easy"] = per_job["easy/wide"]
        if "easy-sjbf/wide" in per_job:
            weights["easy-sjbf"] = per_job["easy-sjbf/wide"]
        if "conservative/narrow" in per_job:
            weights["conservative"] = per_job["conservative/narrow"]
        factor = default.correction_factor
        if "easy-sjbf/corrections" in per_job and "easy-sjbf/wide" in per_job:
            factor = max(1.0, per_job["easy-sjbf/corrections"] / per_job["easy-sjbf/wide"])
        return CellCostModel(
            scheduler_weights=weights, correction_factor=factor, source=path
        )
    except (OSError, ValueError, TypeError):
        return default


def plan_shards(
    cells: Iterable[CellSpec] | Sequence[CellSpec],
    n_shards: int | None = None,
    cost_model: CellCostModel | None = None,
    bench_path: str | None = None,
    prefix: str = "shard",
    cells_per_shard: int = DEFAULT_CELLS_PER_SHARD,
) -> list[Shard]:
    """Partition ``cells`` into cost-balanced, trace-grouped shards.

    ``n_shards`` fixes the shard count; by default it is derived from
    ``cells_per_shard``.  Cells are first grouped by trace identity
    (:func:`repro.core.batch.workload_key`) and each group split into
    consecutive chunks small enough to keep the pool balanced; the
    chunks are then sorted by descending estimated cost and assigned
    greedily to the least-loaded shard (LPT, within 4/3 of the optimal
    makespan).  Same-trace cells therefore land adjacently in one shard
    whenever balance allows, so the worker's shared bundle cache pays
    each trace materialisation once per chunk.  When every cell has a
    distinct trace (chunks are all singletons) the plan is exactly the
    classic per-cell LPT.  Deterministic: the same inputs always produce
    the same shards, and cells inside a shard are emitted in campaign
    order within each group.
    """
    cells = list(cells)
    if not cells:
        return []
    if cost_model is None:
        cost_model = load_bench_cost_model(bench_path)
    if n_shards is None:
        n_shards = max(1, (len(cells) + cells_per_shard - 1) // cells_per_shard)
    n_shards = min(n_shards, len(cells))

    # trace-pure chunks: consecutive same-trace runs capped so that no
    # chunk exceeds the per-shard granularity or starves other shards
    groups: dict[str, list[tuple[int, CellSpec]]] = {}
    group_order: list[str] = []
    for position, cell in enumerate(cells):
        key = workload_key(cell.workload)
        if key not in groups:
            groups[key] = []
            group_order.append(key)
        groups[key].append((position, cell))
    chunk_cap = max(
        1, min(cells_per_shard, -(-len(cells) // n_shards))
    )
    chunks: list[tuple[float, int, str, list[tuple[int, CellSpec]]]] = []
    for key in group_order:
        members = groups[key]
        for start in range(0, len(members), chunk_cap):
            chunk = members[start : start + chunk_cap]
            cost = sum(cost_model.cell_cost(cell) for _, cell in chunk)
            chunks.append((cost, chunk[0][0], key, chunk))
    n_shards = min(n_shards, len(chunks))

    costed = sorted(chunks, key=lambda item: (-item[0], item[1]))
    # (load, shard_index) min-heap; ties resolve to the lowest index so
    # the plan is stable across runs and platforms.
    heap: list[tuple[float, int]] = [(0.0, idx) for idx in range(n_shards)]
    heapq.heapify(heap)
    buckets: list[list[tuple[int, str, list[tuple[int, CellSpec]]]]] = [
        [] for _ in range(n_shards)
    ]
    loads = [0.0] * n_shards
    for cost, first_position, key, chunk in costed:
        load, idx = heapq.heappop(heap)
        buckets[idx].append((first_position, key, chunk))
        loads[idx] = load + cost
        heapq.heappush(heap, (loads[idx], idx))

    width = max(4, len(str(n_shards - 1)))
    shards = []
    for idx, bucket in enumerate(buckets):
        if not bucket:
            continue
        # chunk-major, chunks by campaign position of their first cell:
        # singleton chunks reproduce the classic campaign-order emit
        bucket.sort(key=lambda item: item[0])
        shard_cells: list[CellSpec] = []
        trace_keys: list[str] = []
        for _first, key, chunk in bucket:
            if key not in trace_keys:
                trace_keys.append(key)
            shard_cells.extend(cell for _, cell in chunk)
        shards.append(
            Shard(
                shard_id=f"{prefix}-{idx:0{width}d}",
                cells=tuple(shard_cells),
                est_cost=loads[idx],
                trace_keys=tuple(trace_keys),
            )
        )
    return shards
