"""Shard planning: partition the campaign cell matrix into balanced units.

A *shard* is the unit of distributed dispatch: a named batch of campaign
cells ``(log, triple_key, seed)`` that one worker claims, simulates and
reports as a whole.  Shards should be

* **coarse enough** that queue overhead (claim, lease renewal, result
  files) is amortised over many simulations, and
* **balanced enough** that the campaign's wall time is not dominated by
  one unlucky worker.

Balance needs per-cell cost estimates.  Simulation time scales with the
job count and differs by scheduler variant and by whether a correction
mechanism is active (EXPIRE storms); those ratios are exactly what
``BENCH_engine.json`` measures on every CI run, so the planner seeds its
cost model from the benchmark report when one is available and falls
back to calibrated constants otherwise.  Cells are then distributed with
the classic LPT (longest processing time first) greedy heuristic.
"""

from __future__ import annotations

import heapq
import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.campaign import CampaignConfig

__all__ = [
    "Cell",
    "Shard",
    "CellCostModel",
    "load_bench_cost_model",
    "plan_shards",
    "DEFAULT_CELLS_PER_SHARD",
]

#: A campaign cell: (log, triple_key, seed).
Cell = tuple[str, str, int]

#: Default shard granularity when the caller does not fix a shard count.
DEFAULT_CELLS_PER_SHARD = 16


@dataclass(frozen=True)
class Shard:
    """A named, costed batch of campaign cells."""

    shard_id: str
    cells: tuple[Cell, ...]
    est_cost: float

    def spec(self, config: "CampaignConfig") -> dict:
        """The JSON document enqueued for workers.

        Carries everything a worker needs to recompute cache tokens and
        run cells -- plus the cache/engine versions of the coordinator's
        code, which workers refuse to serve if they don't match.
        """
        from ..core.campaign import CACHE_VERSION
        from ..sim.engine import ENGINE_VERSION

        return {
            "shard_id": self.shard_id,
            "cells": [list(cell) for cell in self.cells],
            "est_cost": round(self.est_cost, 4),
            "n_jobs": config.n_jobs,
            "min_prediction": config.min_prediction,
            "tau": config.tau,
            "cache_version": CACHE_VERSION,
            "engine_version": ENGINE_VERSION,
        }


@dataclass(frozen=True)
class CellCostModel:
    """Relative per-job simulation cost by scheduler and correction load.

    Units are arbitrary (only ratios matter for balance): ``weight(cell)
    = scheduler_weight * n_jobs * correction_factor``.
    """

    #: per-job weight by scheduler name (fallback used for unknown ones).
    scheduler_weights: dict[str, float] = field(
        default_factory=lambda: {"easy": 1.0, "easy-sjbf": 1.0, "conservative": 1.6}
    )
    #: multiplier when the triple runs a correction mechanism.
    correction_factor: float = 3.0
    #: where the weights came from ("defaults" or the bench file path).
    source: str = "defaults"

    def cell_cost(self, triple_key: str, n_jobs: int) -> float:
        """Estimated cost of one cell of ``n_jobs`` jobs."""
        parts = triple_key.split("|")
        if len(parts) != 3:
            raise ValueError(f"malformed triple key {triple_key!r}")
        _, corrector, scheduler = parts
        base = self.scheduler_weights.get(
            scheduler, max(self.scheduler_weights.values())
        )
        factor = self.correction_factor if corrector != "none" else 1.0
        return base * n_jobs * factor


def load_bench_cost_model(path: str | None = None) -> CellCostModel:
    """Cost model seeded from a ``BENCH_engine.json`` report.

    Per-scheduler weights are the benchmark's measured per-job seconds of
    the profile path; the correction factor is the per-job ratio of the
    correction-heavy scenario to its correction-free twin.  Any missing
    file, unreadable JSON or absent scenario falls back to the calibrated
    defaults -- planning must never fail because a benchmark artifact is
    stale.
    """
    default = CellCostModel()
    if path is None:
        path = os.path.join(os.getcwd(), "BENCH_engine.json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
        per_job: dict[str, float] = {}
        for scenario in report.get("scenarios", []):
            n_jobs = scenario.get("trace", {}).get("n_jobs")
            seconds = scenario.get("profile_seconds")
            if not n_jobs or not seconds or seconds <= 0:
                continue
            per_job[scenario.get("scenario", "")] = float(seconds) / float(n_jobs)
        weights = dict(default.scheduler_weights)
        if "easy/wide" in per_job:
            weights["easy"] = per_job["easy/wide"]
        if "easy-sjbf/wide" in per_job:
            weights["easy-sjbf"] = per_job["easy-sjbf/wide"]
        if "conservative/narrow" in per_job:
            weights["conservative"] = per_job["conservative/narrow"]
        factor = default.correction_factor
        if "easy-sjbf/corrections" in per_job and "easy-sjbf/wide" in per_job:
            factor = max(1.0, per_job["easy-sjbf/corrections"] / per_job["easy-sjbf/wide"])
        return CellCostModel(
            scheduler_weights=weights, correction_factor=factor, source=path
        )
    except (OSError, ValueError, TypeError):
        return default


def plan_shards(
    cells: Iterable[Cell],
    n_jobs: int,
    n_shards: int | None = None,
    cost_model: CellCostModel | None = None,
    bench_path: str | None = None,
    prefix: str = "shard",
    cells_per_shard: int = DEFAULT_CELLS_PER_SHARD,
) -> list[Shard]:
    """Partition ``cells`` into cost-balanced shards.

    ``n_shards`` fixes the shard count; by default it is derived from
    ``cells_per_shard``.  Cells are sorted by descending estimated cost
    and assigned greedily to the least-loaded shard (LPT), which is
    within 4/3 of the optimal makespan.  Deterministic: the same inputs
    always produce the same shards, and cells inside a shard are emitted
    in campaign order so workers warm per-``(log, seed)`` trace caches.
    """
    cells = list(cells)
    if not cells:
        return []
    if cost_model is None:
        cost_model = load_bench_cost_model(bench_path)
    if n_shards is None:
        n_shards = max(1, (len(cells) + cells_per_shard - 1) // cells_per_shard)
    n_shards = min(n_shards, len(cells))

    order = {cell: idx for idx, cell in enumerate(cells)}
    costed = sorted(
        ((cost_model.cell_cost(key, n_jobs), order[(log, key, seed)], (log, key, seed))
         for log, key, seed in cells),
        key=lambda item: (-item[0], item[1]),
    )
    # (load, shard_index) min-heap; ties resolve to the lowest index so
    # the plan is stable across runs and platforms.
    heap: list[tuple[float, int]] = [(0.0, idx) for idx in range(n_shards)]
    heapq.heapify(heap)
    buckets: list[list[tuple[int, Cell]]] = [[] for _ in range(n_shards)]
    loads = [0.0] * n_shards
    for cost, position, cell in costed:
        load, idx = heapq.heappop(heap)
        buckets[idx].append((position, cell))
        loads[idx] = load + cost
        heapq.heappush(heap, (loads[idx], idx))

    width = max(4, len(str(n_shards - 1)))
    shards = []
    for idx, bucket in enumerate(buckets):
        if not bucket:
            continue
        bucket.sort()
        shards.append(
            Shard(
                shard_id=f"{prefix}-{idx:0{width}d}",
                cells=tuple(cell for _, cell in bucket),
                est_cost=loads[idx],
            )
        )
    return shards
