"""A serverless work queue in a shared directory.

N worker processes -- possibly on N different hosts -- cooperate on one
campaign with nothing but a directory they can all reach (NFS, a bind
mount, a laptop's /tmp).  There is no queue server and no network
protocol; every primitive is a POSIX filesystem operation whose
atomicity the design leans on:

* **claim-by-rename** -- a shard is a JSON file in ``todo/``; claiming it
  is ``rename(todo/X, claimed/X.<worker>)``.  ``rename(2)`` is atomic on
  a single filesystem, so exactly one of any number of racing workers
  wins; the losers see ENOENT and move to the next shard.
* **mtime heartbeats** -- the claimed file *is* the lease.  The worker
  touches it (``utime``) after every finished cell; a coordinator treats
  a claimed shard whose mtime is older than ``lease_ttl`` as abandoned
  and renames it back into ``todo/`` with a bumped attempt counter
  (worker crash == automatic retry, capped at ``max_attempts``).
* **append-only results** -- each attempt streams finished cells to its
  own ``results/<shard>.t<n>.jsonl``; a crashed attempt's partial file
  is still harvested (later attempts skip cells it already proved, and
  the merge dedups by cell token).

Directory layout::

    queue/
      queue.json            # created-once metadata: versions, lease ttl
      todo/<shard>.t<n>.json        # enqueued, attempt n
      claimed/<shard>.t<n>.<worker>.json   # leased to <worker>
      done/<shard>.json             # completed
      failed/<shard>.t<n>.json      # attempts exhausted
      results/<shard>.t<n>.jsonl    # per-attempt cell results
      progress/<worker>.jsonl       # per-worker progress streams
      DONE / STOP                   # coordinator -> worker signals

Races are resolved toward safety, not efficiency: a worker whose lease
was re-queued under it keeps simulating until its next renewal fails
(:class:`LeaseLost`), and the cells it already wrote merge cleanly
because simulations are deterministic -- duplicated work, never
corrupted results.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass

__all__ = [
    "FsQueue",
    "Lease",
    "LeaseLost",
    "QueueVersionError",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "LEASE_GRANULARITY",
    "sanitize_id",
]

DEFAULT_LEASE_TTL = 300.0
DEFAULT_MAX_ATTEMPTS = 3

#: Slack added to the lease TTL when judging heartbeat staleness.  Lease
#: heartbeats are mtime stamps, and filesystems may round mtimes to
#: whole seconds (FAT: two) -- without the slack a freshly renewed lease
#: whose stored mtime rounded *down* can look older than the TTL and be
#: stolen from a live worker.
LEASE_GRANULARITY = 2.0

_SAFE = re.compile(r"[^A-Za-z0-9_-]+")


def sanitize_id(name: str) -> str:
    """Collapse a free-form name to the queue's filename-safe alphabet."""
    cleaned = _SAFE.sub("-", name).strip("-")
    if not cleaned:
        raise ValueError(f"identifier {name!r} has no filename-safe characters")
    return cleaned


class LeaseLost(RuntimeError):
    """The worker's claimed file vanished: the lease expired and the
    coordinator re-queued (or failed) the shard.  The worker must stop
    working on it; everything it already wrote remains harvestable."""


class QueueVersionError(RuntimeError):
    """Queue metadata was written by incompatible code (cache/engine
    version mismatch); serving it would poison the merged cache."""


@dataclass(frozen=True)
class Lease:
    """A worker's hold on one shard attempt."""

    shard_id: str
    attempt: int
    worker_id: str
    path: str  # the claimed file; its mtime is the heartbeat
    spec: dict


class FsQueue:
    """Handle on one queue directory (see module docstring for layout)."""

    SUBDIRS = ("todo", "claimed", "done", "failed", "results", "progress")

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)

    # -- paths ----------------------------------------------------------------
    @property
    def meta_path(self) -> str:
        return os.path.join(self.root, "queue.json")

    def _dir(self, kind: str) -> str:
        return os.path.join(self.root, kind)

    def result_path(self, shard_id: str, attempt: int) -> str:
        return os.path.join(self._dir("results"), f"{shard_id}.t{attempt}.jsonl")

    def result_paths(self, shard_id: str | None = None) -> list[str]:
        """Every per-attempt result file (optionally for one shard)."""
        directory = self._dir("results")
        if not os.path.isdir(directory):
            return []
        names = sorted(
            name
            for name in os.listdir(directory)
            if name.endswith(".jsonl")
            and (shard_id is None or name.startswith(f"{shard_id}.t"))
        )
        return [os.path.join(directory, name) for name in names]

    def progress_path(self, worker_id: str) -> str:
        return os.path.join(self._dir("progress"), f"{worker_id}.jsonl")

    # -- lifecycle ------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str,
        meta: dict | None = None,
        lease_ttl: float | None = None,
        exist_ok: bool = True,
    ) -> FsQueue:
        """Initialise (or reopen) a queue directory.

        ``meta`` is stored in ``queue.json`` together with the creating
        code's cache/engine versions; workers refuse to serve a queue
        whose versions differ from their own.

        An explicit ``lease_ttl`` is **authoritative**: reopening an
        existing queue with a different value rewrites the metadata, so
        workers (which re-read it per claim) heartbeat against the same
        clock the coordinator reaps with.  ``None`` keeps whatever the
        queue already records (:data:`DEFAULT_LEASE_TTL` for new queues).
        """
        from ..core.campaign import CACHE_VERSION
        from ..sim.engine import ENGINE_VERSION
        from ..spec import SPEC_VERSION

        queue = cls(root)
        os.makedirs(queue.root, exist_ok=exist_ok)
        for sub in cls.SUBDIRS:
            os.makedirs(queue._dir(sub), exist_ok=True)
        if not os.path.exists(queue.meta_path):
            payload = {
                "format": "repro-fsqueue-v1",
                "cache_version": CACHE_VERSION,
                "engine_version": ENGINE_VERSION,
                "spec_version": SPEC_VERSION,
                "lease_ttl": float(
                    DEFAULT_LEASE_TTL if lease_ttl is None else lease_ttl
                ),
                "generation": 0,
                **(meta or {}),
            }
            _atomic_write_json(queue.meta_path, payload)
        elif lease_ttl is not None:
            existing = queue.read_meta()
            if float(existing.get("lease_ttl", DEFAULT_LEASE_TTL)) != float(lease_ttl):
                existing["lease_ttl"] = float(lease_ttl)
                _atomic_write_json(queue.meta_path, existing)
        return queue

    def read_meta(self) -> dict:
        with open(self.meta_path, encoding="utf-8") as fh:
            return json.load(fh)

    def check_versions(self) -> dict:
        """Raise :class:`QueueVersionError` unless this code matches the
        queue's recorded cache/engine/spec versions.  Returns the
        metadata.  (Queues created before the spec redesign recorded no
        ``spec_version``; those mismatch on ``cache_version`` anyway.)"""
        from ..core.campaign import CACHE_VERSION
        from ..sim.engine import ENGINE_VERSION
        from ..spec import SPEC_VERSION

        meta = self.read_meta()
        mine = {
            "cache_version": CACHE_VERSION,
            "engine_version": ENGINE_VERSION,
            "spec_version": SPEC_VERSION,
        }
        theirs = {k: meta.get(k) for k in mine}
        if theirs != mine:
            raise QueueVersionError(
                f"queue {self.root} was written by incompatible code: "
                f"queue has {theirs}, this process has {mine}"
            )
        return meta

    def next_generation(self) -> int:
        """Bump and return the enqueue generation (coordinator restarts
        get fresh shard-id prefixes so stale files never collide)."""
        meta = self.read_meta()
        generation = int(meta.get("generation", 0)) + 1
        meta["generation"] = generation
        _atomic_write_json(self.meta_path, meta)
        return generation

    # -- enqueue / claim ------------------------------------------------------
    def enqueue(self, spec: dict, attempt: int = 0) -> str:
        """Drop a shard spec into ``todo/``; returns the file path."""
        shard_id = sanitize_id(str(spec["shard_id"]))
        path = os.path.join(self._dir("todo"), f"{shard_id}.t{attempt}.json")
        _atomic_write_json(path, spec)
        return path

    def claim(self, worker_id: str) -> Lease | None:
        """Atomically claim the first available shard, or ``None``.

        Lowest attempt first, then lexicographic shard id -- retries of
        crashed shards queue behind fresh work of the same attempt rank
        but ahead of nothing else, keeping progress monotonic.
        """
        worker_id = sanitize_id(worker_id)
        todo = self._dir("todo")
        try:
            # sort at the scan site: os.listdir order is filesystem-
            # dependent, and claim order must not be
            names = sorted(os.listdir(todo), key=_todo_sort_key)
        except FileNotFoundError:
            return None
        for name in names:
            shard_id, attempt = _parse_todo_name(name)
            if shard_id is None:
                continue
            src = os.path.join(todo, name)
            dst = os.path.join(
                self._dir("claimed"), f"{shard_id}.t{attempt}.{worker_id}.json"
            )
            try:
                os.rename(src, dst)
            except OSError:
                continue  # another worker won the race; try the next shard
            try:
                # fresh heartbeat: the lease clock starts now.  rename(2)
                # preserves the enqueue-time mtime, so a shard that aged
                # past lease_ttl while *queued* looks expired for an
                # instant -- a racing coordinator may snatch it back
                # before the utime lands.  Treat that as a lost claim.
                os.utime(dst)
                with open(dst, encoding="utf-8") as fh:
                    spec = json.load(fh)
            except FileNotFoundError:
                continue
            return Lease(
                shard_id=shard_id,
                attempt=attempt,
                worker_id=worker_id,
                path=dst,
                spec=spec,
            )
        return None

    # -- worker-side lease operations ----------------------------------------
    def renew(self, lease: Lease) -> None:
        """Refresh the heartbeat; raises :class:`LeaseLost` if the
        coordinator re-queued the shard from under this worker."""
        try:
            os.utime(lease.path)
        except FileNotFoundError:
            raise LeaseLost(
                f"lease on {lease.shard_id} (attempt {lease.attempt}) expired "
                f"and was re-queued; abandoning the shard"
            ) from None

    def complete(self, lease: Lease) -> None:
        """Move the claimed shard to ``done/`` (idempotent per shard)."""
        dst = os.path.join(self._dir("done"), f"{lease.shard_id}.json")
        try:
            os.replace(lease.path, dst)
        except FileNotFoundError:
            raise LeaseLost(
                f"lease on {lease.shard_id} (attempt {lease.attempt}) vanished "
                f"before completion; results stay harvestable"
            ) from None

    # -- coordinator-side maintenance ----------------------------------------
    def requeue_expired(
        self,
        lease_ttl: float | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        now: float | None = None,
        granularity: float | None = None,
    ) -> list[tuple[str, int, str]]:
        """Re-queue (or fail) claimed shards whose heartbeat went stale.

        A lease only counts as stale once its mtime age exceeds
        ``lease_ttl`` **plus** ``granularity`` (default
        :data:`LEASE_GRANULARITY`), so coarse filesystem mtime rounding
        can never make a freshly heartbeated shard look abandoned.

        Returns ``(shard_id, next_attempt, disposition)`` tuples where
        disposition is ``"requeued"`` or ``"failed"``.
        """
        if lease_ttl is None:
            lease_ttl = float(self.read_meta().get("lease_ttl", DEFAULT_LEASE_TTL))
        if granularity is None:
            granularity = LEASE_GRANULARITY
        if now is None:
            now = time.time()
        claimed = self._dir("claimed")
        moved: list[tuple[str, int, str]] = []
        try:
            names = sorted(os.listdir(claimed))
        except FileNotFoundError:
            return moved
        for name in names:
            parsed = _parse_claimed_name(name)
            if parsed is None:
                continue
            shard_id, attempt, _worker = parsed
            path = os.path.join(claimed, name)
            try:
                age = now - os.stat(path).st_mtime
            except FileNotFoundError:
                continue  # completed between listdir and stat
            if age <= lease_ttl + granularity:
                continue
            next_attempt = attempt + 1
            if next_attempt >= max_attempts:
                dst = os.path.join(
                    self._dir("failed"), f"{shard_id}.t{attempt}.json"
                )
                disposition = "failed"
            else:
                dst = os.path.join(
                    self._dir("todo"), f"{shard_id}.t{next_attempt}.json"
                )
                disposition = "requeued"
            try:
                os.replace(path, dst)
            except FileNotFoundError:
                continue  # the worker completed it in the window; fine
            moved.append((shard_id, next_attempt, disposition))
        return moved

    def clear_todo(self) -> int:
        """Drop every queued (unclaimed) shard -- coordinator restarts
        re-plan from the authoritative cache + results instead."""
        todo = self._dir("todo")
        removed = 0
        for name in sorted(os.listdir(todo)):
            try:
                os.unlink(os.path.join(todo, name))
                removed += 1
            except FileNotFoundError:
                pass
        return removed

    # -- signals --------------------------------------------------------------
    def signal(self, name: str, payload: dict | None = None) -> None:
        """Create a DONE/STOP marker file (atomically, with payload).

        DONE markers carry the enqueue ``generation`` they conclude, so
        a worker can tell a *stale* DONE (left on a reused queue
        directory by a finished campaign) from one that ends the
        campaign currently in the metadata -- see :meth:`read_signal`.
        """
        _atomic_write_json(
            os.path.join(self.root, name),
            {"time": round(time.time(), 3), **(payload or {})},
        )

    def has_signal(self, name: str) -> bool:
        return os.path.exists(os.path.join(self.root, name))

    def signal_mtime(self, name: str) -> float | None:
        """The marker file's mtime -- stamped by the *shared* filesystem,
        so unlike wall-clock payloads it is comparable across hosts."""
        try:
            return os.stat(os.path.join(self.root, name)).st_mtime
        except OSError:
            return None

    def read_signal(self, name: str) -> dict | None:
        try:
            with open(os.path.join(self.root, name), encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return {}  # marker exists but is unreadable/legacy

    def clear_signal(self, name: str) -> None:
        try:
            os.unlink(os.path.join(self.root, name))
        except FileNotFoundError:
            pass

    # -- introspection --------------------------------------------------------
    def todo_ids(self) -> set[str]:
        return {
            shard_id
            for name in _safe_listdir(self._dir("todo"))
            if (shard_id := _parse_todo_name(name)[0]) is not None
        }

    def claimed_ids(self) -> set[str]:
        return {
            parsed[0]
            for name in _safe_listdir(self._dir("claimed"))
            if (parsed := _parse_claimed_name(name)) is not None
        }

    def done_ids(self) -> set[str]:
        return {
            name[: -len(".json")]
            for name in _safe_listdir(self._dir("done"))
            if name.endswith(".json")
        }

    def failed_ids(self) -> set[str]:
        return {
            shard_id
            for name in _safe_listdir(self._dir("failed"))
            if (shard_id := _parse_todo_name(name)[0]) is not None
        }


# -- helpers ------------------------------------------------------------------


def _safe_listdir(path: str) -> list[str]:
    try:
        return sorted(os.listdir(path))
    except FileNotFoundError:
        return []


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)


def _parse_todo_name(name: str) -> tuple[str | None, int]:
    """``<shard>.t<n>.json`` -> (shard_id, attempt); (None, 0) if foreign."""
    if not name.endswith(".json"):
        return None, 0
    stem = name[: -len(".json")]
    shard_id, sep, attempt = stem.rpartition(".t")
    if not sep or not attempt.isdigit():
        return None, 0
    return shard_id, int(attempt)


def _todo_sort_key(name: str) -> tuple[int, str]:
    shard_id, attempt = _parse_todo_name(name)
    return (attempt, shard_id or name)


def _parse_claimed_name(name: str) -> tuple[str, int, str] | None:
    """``<shard>.t<n>.<worker>.json`` -> (shard_id, attempt, worker_id)."""
    if not name.endswith(".json"):
        return None
    stem = name[: -len(".json")]
    rest, sep, worker = stem.rpartition(".")
    if not sep:
        return None
    shard_id, sep, attempt = rest.rpartition(".t")
    if not sep or not attempt.isdigit():
        return None
    return shard_id, int(attempt), worker
