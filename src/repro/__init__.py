"""repro: reproduction of "Improving Backfilling by using Machine Learning
to predict Running Times" (Gaussier, Glesser, Reis & Trystram, SC 2015).

Public API tour
---------------

Workloads::

    from repro import get_trace, load_swf, Trace
    trace = get_trace("KTH-SP2", n_jobs=2000)   # calibrated synthetic log

Simulation of one heuristic triple::

    from repro import simulate, EasyScheduler, MLPredictor, E_LOSS
    from repro import IncrementalCorrector
    result = simulate(trace, EasyScheduler("sjbf"), MLPredictor(E_LOSS),
                      IncrementalCorrector())
    print(result.avebsld())

The paper's campaign and analyses::

    from repro import CampaignConfig, run_campaign, leave_one_out
    campaign = run_campaign(CampaignConfig(n_jobs=1500, replicas=2))
    for row in campaign.table1_rows():
        print(row)

Declarative experiment specs (any scenario grid, not just the paper's)::

    from repro import expand_spec_file, run_cells
    cells = expand_spec_file("experiments/paper.toml")
    result = run_cells(cells, cache_path="campaign.jsonl")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .core import (
    EASY_TRIPLE,
    EASYPP_TRIPLE,
    ELOSS_TRIPLE,
    CampaignConfig,
    CampaignResult,
    HeuristicTriple,
    analyze_predictions,
    average_reductions,
    campaign_triples,
    leave_one_out,
    run_campaign,
    run_cells,
    run_spec,
    run_spec_result,
    run_components_on_trace,
    run_triple,
    run_triple_on_trace,
    selection_consensus,
)
from .correct import (
    Corrector,
    IncrementalCorrector,
    RecursiveDoublingCorrector,
    RequestedTimeCorrector,
    make_corrector,
)
from .metrics import (
    average_bounded_slowdown,
    bounded_slowdowns,
    ecdf,
    mean_absolute_error,
    mean_loss,
    pearson,
)
from .predict import (
    E_LOSS,
    SQUARED_LOSS,
    ClairvoyantPredictor,
    LossSpec,
    MLPredictor,
    NagOptimizer,
    Predictor,
    RecentAveragePredictor,
    RequestedTimePredictor,
    all_loss_specs,
    make_predictor,
)
from .sched import (
    ConservativeScheduler,
    EasyScheduler,
    FcfsScheduler,
    Scheduler,
    make_scheduler,
)
from .sim import (
    EstimatedStart,
    Machine,
    SimSession,
    SimulationResult,
    Simulator,
    simulate,
)
from .spec import (
    SPEC_VERSION,
    CellSpec,
    ComponentSpec,
    WorkloadSpec,
    expand_spec_file,
    validate_spec_file,
)
from .workload import (
    ARCHIVE,
    LOG_NAMES,
    Job,
    Trace,
    WorkloadModel,
    get_trace,
    load_swf,
    save_swf,
    synthesize,
)

__version__ = "1.0.0"

__all__ = [
    "EASY_TRIPLE",
    "EASYPP_TRIPLE",
    "ELOSS_TRIPLE",
    "CampaignConfig",
    "CampaignResult",
    "HeuristicTriple",
    "analyze_predictions",
    "average_reductions",
    "campaign_triples",
    "leave_one_out",
    "run_campaign",
    "run_cells",
    "run_spec",
    "run_spec_result",
    "run_components_on_trace",
    "run_triple",
    "run_triple_on_trace",
    "selection_consensus",
    "SPEC_VERSION",
    "CellSpec",
    "ComponentSpec",
    "WorkloadSpec",
    "expand_spec_file",
    "validate_spec_file",
    "Corrector",
    "IncrementalCorrector",
    "RecursiveDoublingCorrector",
    "RequestedTimeCorrector",
    "make_corrector",
    "average_bounded_slowdown",
    "bounded_slowdowns",
    "ecdf",
    "mean_absolute_error",
    "mean_loss",
    "pearson",
    "E_LOSS",
    "SQUARED_LOSS",
    "ClairvoyantPredictor",
    "LossSpec",
    "MLPredictor",
    "NagOptimizer",
    "Predictor",
    "RecentAveragePredictor",
    "RequestedTimePredictor",
    "all_loss_specs",
    "make_predictor",
    "ConservativeScheduler",
    "EasyScheduler",
    "FcfsScheduler",
    "Scheduler",
    "make_scheduler",
    "Machine",
    "SimulationResult",
    "Simulator",
    "simulate",
    "SimSession",
    "EstimatedStart",
    "ARCHIVE",
    "LOG_NAMES",
    "Job",
    "Trace",
    "WorkloadModel",
    "get_trace",
    "load_swf",
    "save_swf",
    "synthesize",
    "__version__",
]
