"""Event types and the event queue driving the simulation.

The simulator is a classic discrete-event loop.  Four event kinds exist:

* ``SUBMIT``  -- a job is released into the waiting queue (``r_j``);
* ``FINISH``  -- a running job really completes (engine-side knowledge);
* ``EXPIRE``  -- a running job reaches its *predicted* end without having
  finished: the prediction was too small and the correction mechanism
  (paper Section 5.2) must produce a new one;
* ``MACHINE`` -- a capacity change (node drain/restore) fed into a live
  :class:`~repro.sim.session.SimSession`; never used by batch replay.

Same-timestamp ordering contract (asserted by tests and relied on for
batch/streaming equivalence)
----------------------------------------------------------------------

Events at one timestamp are totally ordered by ``(kind, seq)`` where
``seq`` is a strictly increasing insertion counter shared across kinds:

1. ``FINISH`` before ``EXPIRE`` before ``SUBMIT`` before ``MACHINE``, so
   resources freed at time *t* are visible to jobs submitted at *t*,
   corrections see the machine after completions, and capacity changes
   land after every job event of the instant (but before the instant's
   scheduling pass);
2. within one kind, insertion order.  Two submissions at the same
   instant are processed in the order they were pushed -- i.e. trace
   order -- otherwise FCFS priority would depend on heap internals.

Because ``kind`` dominates ``seq``, the ordering is *feed-schedule
independent*: a batch replay that pushes every SUBMIT up front and a
streaming session that interleaves ``feed()`` with ``step()`` produce
the same processing order, provided jobs are fed in trace order and
never behind the clock.  The queue enforces the second half itself: it
tracks the largest timestamp ever popped (the *floor*) and rejects any
push behind it, so a desynchronised feeder fails loudly instead of
silently diverging from batch replay.

``EXPIRE`` events can become stale (the prediction was corrected again,
or the job finished first); each carries the prediction *version* it was
scheduled for and is dropped if the job has moved on.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from dataclasses import dataclass
from enum import IntEnum

__all__ = ["EventType", "Event", "EventQueue"]


class EventType(IntEnum):
    """Kinds of simulation events, in same-timestamp processing order."""

    FINISH = 0
    EXPIRE = 1
    SUBMIT = 2
    MACHINE = 3


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled simulation event.

    ``job_id`` identifies the job for job events; for ``MACHINE`` events
    it is the session's machine-event sequence number instead.
    """

    time: float
    kind: EventType
    job_id: int
    #: prediction version for EXPIRE staleness checks; 0 otherwise.
    version: int = 0

    def sort_key(self, seq: int) -> tuple[float, int, int]:
        """The queue's total order: time, then kind, then insertion seq."""
        return (self.time, int(self.kind), seq)


class EventQueue:
    """A stable priority queue of events with a monotonic time floor.

    Stability matters: two submissions at the same instant must be
    processed in insertion (i.e. trace) order, otherwise FCFS priority
    would depend on heap internals.  See the module docstring for the
    full same-timestamp ordering contract.

    The queue also asserts monotonicity: once an event at time *t* has
    been popped, pushing any event earlier than *t* raises.  Batch
    replay never trips this (all SUBMITs are pushed up front and
    FINISH/EXPIRE always land in the future); it exists so a streaming
    feeder that falls behind the clock cannot diverge from batch replay
    silently.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        #: largest timestamp ever popped; pushes behind it are rejected.
        self._floor = float("-inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def floor(self) -> float:
        """The monotonic time floor (largest timestamp ever popped)."""
        return self._floor

    def push(self, event: Event) -> None:
        """Add an event; events never change once pushed."""
        if event.time < 0:
            raise ValueError(f"event time must be >= 0, got {event.time}")
        if event.time < self._floor:
            raise ValueError(
                f"event at t={event.time} is behind the queue's processed "
                f"floor t={self._floor}; streaming feeds must be monotonic"
            )
        heapq.heappush(self._heap, event.sort_key(self._seq) + (event,))
        self._seq += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        event = heapq.heappop(self._heap)[3]
        self._floor = event.time
        return event

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0][3]

    def peek_time(self) -> float:
        """Timestamp of the earliest event."""
        return self.peek().time

    def drain_time(self, time: float) -> Iterator[Event]:
        """Yield and remove every event scheduled exactly at ``time``."""
        while self._heap and self._heap[0][0] == time:
            yield self.pop()
