"""Event types and the event queue driving the simulation.

The simulator is a classic discrete-event loop.  Three event kinds exist:

* ``SUBMIT``  -- a job is released into the waiting queue (``r_j``);
* ``FINISH``  -- a running job really completes (engine-side knowledge);
* ``EXPIRE``  -- a running job reaches its *predicted* end without having
  finished: the prediction was too small and the correction mechanism
  (paper Section 5.2) must produce a new one.

Events at the same timestamp are processed ``FINISH`` < ``EXPIRE`` <
``SUBMIT`` so that resources freed at time *t* are visible to jobs
submitted at *t*, and corrections see the machine after completions.

``EXPIRE`` events can become stale (the prediction was corrected again,
or the job finished first); each carries the prediction *version* it was
scheduled for and is dropped if the job has moved on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator

__all__ = ["EventType", "Event", "EventQueue"]


class EventType(IntEnum):
    """Kinds of simulation events, in same-timestamp processing order."""

    FINISH = 0
    EXPIRE = 1
    SUBMIT = 2


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled simulation event."""

    time: float
    kind: EventType
    job_id: int
    #: prediction version for EXPIRE staleness checks; 0 otherwise.
    version: int = 0

    def sort_key(self, seq: int) -> tuple[float, int, int]:
        return (self.time, int(self.kind), seq)


class EventQueue:
    """A stable priority queue of events.

    Stability matters: two submissions at the same instant must be
    processed in insertion (i.e. trace) order, otherwise FCFS priority
    would depend on heap internals.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Add an event; events never change once pushed."""
        if event.time < 0:
            raise ValueError(f"event time must be >= 0, got {event.time}")
        heapq.heappush(self._heap, (event.time, int(event.kind), self._seq, event))
        self._seq += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0][3]

    def peek_time(self) -> float:
        """Timestamp of the earliest event."""
        return self.peek().time

    def drain_time(self, time: float) -> Iterator[Event]:
        """Yield and remove every event scheduled exactly at ``time``."""
        while self._heap and self._heap[0][0] == time:
            yield self.pop()
