"""Post-hoc schedule timelines: utilization and queue depth over time.

Reconstructs step functions from a finished :class:`SimulationResult` --
the simulator itself stays lean and per-job; anything about "the machine
over time" is derived here.  Used by the analysis examples and by tests
as an independent check of processor conservation.
"""

from __future__ import annotations

import numpy as np

from .results import SimulationResult

__all__ = ["occupancy_timeline", "queue_timeline", "utilization_profile", "ascii_timeline"]


def occupancy_timeline(result: SimulationResult) -> tuple[np.ndarray, np.ndarray]:
    """Step function of busy processors: ``(times, busy_after_time)``.

    ``busy_after_time[i]`` holds between ``times[i]`` and ``times[i+1]``.
    """
    events: list[tuple[float, int]] = []
    for rec in result:
        events.append((rec.start_time, rec.processors))
        events.append((rec.end_time, -rec.processors))
    if not events:
        return np.array([0.0]), np.array([0])
    events.sort()
    times: list[float] = []
    busy: list[int] = []
    current = 0
    for time, delta in events:
        current += delta
        if times and times[-1] == time:
            busy[-1] = current
        else:
            times.append(time)
            busy.append(current)
    return np.asarray(times), np.asarray(busy)


def queue_timeline(result: SimulationResult) -> tuple[np.ndarray, np.ndarray]:
    """Step function of waiting jobs: ``(times, queued_after_time)``."""
    events: list[tuple[float, int]] = []
    for rec in result:
        events.append((rec.submit_time, 1))
        events.append((rec.start_time, -1))
    if not events:
        return np.array([0.0]), np.array([0])
    events.sort()
    times: list[float] = []
    depth: list[int] = []
    current = 0
    for time, delta in events:
        current += delta
        if times and times[-1] == time:
            depth[-1] = current
        else:
            times.append(time)
            depth.append(current)
    return np.asarray(times), np.asarray(depth)


def utilization_profile(
    result: SimulationResult, n_bins: int = 100
) -> tuple[np.ndarray, np.ndarray]:
    """Time-binned utilization in [0, 1]: ``(bin_starts, utilization)``."""
    if n_bins <= 0:
        raise ValueError("n_bins must be positive")
    times, busy = occupancy_timeline(result)
    start, end = times[0], max(times[-1], times[0] + 1.0)
    edges = np.linspace(start, end, n_bins + 1)
    util = np.zeros(n_bins)
    for i in range(n_bins):
        lo, hi = edges[i], edges[i + 1]
        # integrate the step function over [lo, hi)
        idx = np.searchsorted(times, lo, side="right") - 1
        t = lo
        area = 0.0
        while t < hi and idx < len(times):
            seg_end = times[idx + 1] if idx + 1 < len(times) else hi
            seg_end = min(seg_end, hi)
            area += busy[max(idx, 0)] * (seg_end - t)
            t = seg_end
            idx += 1
        util[i] = area / ((hi - lo) * result.machine_processors)
    return edges[:-1], util


def ascii_timeline(
    result: SimulationResult, width: int = 72, height: int = 10
) -> str:
    """Render binned utilization as a bar chart for terminal reports."""
    _starts, util = utilization_profile(result, n_bins=width)
    grid = [[" "] * width for _ in range(height)]
    for col, value in enumerate(util):
        bar = int(round(min(max(value, 0.0), 1.0) * height))
        for row in range(bar):
            grid[height - 1 - row][col] = "#"
    lines = ["|" + "".join(row) for row in grid]
    axis = "+" + "-" * width
    return (
        "utilization over time (100% = top)\n"
        + "\n".join(lines)
        + "\n"
        + axis
    )
