"""The discrete-event scheduling simulator.

Drives a trace through a scheduler with a predictor and a correction
mechanism -- the "heuristic triple" of the paper.  The engine is the only
component that knows actual runtimes; schedulers see predictions, and
predictors learn only from completions.

Event loop semantics (matching pyss and the paper's on-line setting):

* all events at one timestamp are processed before any scheduling
  decision, in FINISH < EXPIRE < SUBMIT order;
* one scheduling pass runs after each batch of events;
* a running job whose *predicted* end passes without completion triggers
  the correction mechanism, bumping its prediction version; stale expiry
  events are dropped;
* corrections landing on the same timestamp (an EXPIRE *storm*, common
  with aggressive predictors) are applied to the corrector per job but
  reported to the scheduler as **one batch** per timestamp
  (:meth:`repro.sched.base.Scheduler.on_corrections`), so incremental
  availability structures re-sort/rebuild once instead of per job;
* predictions are clamped to ``[min_prediction, requested_time]``; jobs
  reaching their requested time finish there (SWF semantics guarantee
  ``runtime <= requested_time``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..workload.trace import Trace
from .events import Event, EventQueue, EventType
from .machine import Machine
from .results import JobRecord, SimulationResult

if TYPE_CHECKING:  # imported for type hints only; avoids an import cycle
    from ..correct.base import Corrector
    from ..predict.base import Predictor
    from ..sched.base import Scheduler

__all__ = ["Simulator", "EngineStats", "simulate", "ENGINE_VERSION"]

#: Bumped whenever engine or scheduler semantics could change simulation
#: outcomes; campaign cache keys embed it so stale results never survive
#: an engine change.  Version 2: incremental profile-based scheduling.
ENGINE_VERSION = 2


@dataclass
class EngineStats:
    """Run-level counters (not per-job)."""

    n_events: int = 0
    n_scheduling_passes: int = 0
    n_corrections: int = 0
    max_queue_length: int = 0


class Simulator:
    """One simulation = trace x scheduler x predictor x corrector."""

    def __init__(
        self,
        trace: Trace,
        scheduler: Scheduler,
        predictor: Predictor,
        corrector: Corrector | None = None,
        min_prediction: float = 60.0,
    ) -> None:
        if min_prediction <= 0:
            raise ValueError("min_prediction must be positive")
        self.trace = trace
        self.scheduler = scheduler
        self.predictor = predictor
        self.corrector = corrector
        self.min_prediction = float(min_prediction)
        self.stats = EngineStats()

    def run(self) -> SimulationResult:
        """Execute the full trace; returns when every job has completed."""
        machine = Machine(self.trace.processors)
        events = EventQueue()
        records: dict[int, JobRecord] = {}
        for job in self.trace:
            records[job.job_id] = JobRecord(job=job)
            events.push(Event(time=job.submit_time, kind=EventType.SUBMIT, job_id=job.job_id))

        corrected: list[JobRecord] = []
        while events:
            now = events.peek_time()
            for event in events.drain_time(now):
                self.stats.n_events += 1
                if event.kind is EventType.SUBMIT:
                    self._handle_submit(records[event.job_id], now)
                elif event.kind is EventType.FINISH:
                    self._handle_finish(records[event.job_id], machine, now)
                else:  # EXPIRE
                    self._handle_expire(
                        event, records[event.job_id], machine, events, now, corrected
                    )
            if corrected:
                # one scheduler notification per timestamp: a correction
                # storm costs one structure re-sort/rebuild, not one per job
                self.scheduler.on_corrections(corrected)
                corrected.clear()
            self._schedule_pass(machine, events, now)

        result = SimulationResult(
            records.values(),
            machine_processors=self.trace.processors,
            trace_name=self.trace.name,
            scheduler_name=self.scheduler.name,
            predictor_name=self.predictor.name,
            corrector_name=self.corrector.name if self.corrector else "none",
        )
        return result

    # -- event handlers -----------------------------------------------------
    def _handle_submit(self, record: JobRecord, now: float) -> None:
        raw = float(self.predictor.predict(record, now))
        if raw != raw or raw in (float("inf"), float("-inf")):
            raise ValueError(
                f"predictor {self.predictor.name!r} returned a non-finite "
                f"prediction for job {record.job_id}"
            )
        record.raw_prediction = raw
        clamped = min(max(raw, self.min_prediction), record.requested_time)
        record.initial_prediction = clamped
        record.predicted_runtime = clamped
        self.scheduler.on_submit(record)
        self.stats.max_queue_length = max(
            self.stats.max_queue_length, self.scheduler.queue_length
        )

    def _handle_finish(self, record: JobRecord, machine: Machine, now: float) -> None:
        machine.finish(record.job_id, now)
        self.predictor.on_finish(record, now)
        self.scheduler.on_finish(record)

    def _handle_expire(
        self,
        event: Event,
        record: JobRecord,
        machine: Machine,
        events: EventQueue,
        now: float,
        corrected: list[JobRecord],
    ) -> None:
        if not machine.is_running(record.job_id):
            return  # stale: the job already finished
        if event.version != record.version:
            return  # stale: the prediction was corrected since
        if self.corrector is None:
            raise RuntimeError(
                f"job {record.job_id} under-predicted at t={now} but no "
                "correction mechanism is configured"
            )
        elapsed = now - record.start_time
        new_prediction = float(self.corrector.correct(record, now))
        # Contract enforcement: progress past the elapsed time, capped by
        # the requested time which upper-bounds any feasible runtime.
        new_prediction = min(
            max(new_prediction, elapsed + 1.0), record.requested_time
        )
        record.corrections += 1
        record.version += 1
        record.predicted_runtime = new_prediction
        self.stats.n_corrections += 1
        # the scheduler hears about the whole timestamp's corrections at
        # once (Scheduler.on_corrections), after the event drain
        corrected.append(record)
        self._push_expiry(record, events)

    def _push_expiry(self, record: JobRecord, events: EventQueue) -> None:
        """Schedule the next expiry if the prediction is still too small."""
        if record.predicted_runtime < record.runtime:
            events.push(
                Event(
                    time=record.start_time + record.predicted_runtime,
                    kind=EventType.EXPIRE,
                    job_id=record.job_id,
                    version=record.version,
                )
            )

    # -- scheduling ---------------------------------------------------------
    def _schedule_pass(self, machine: Machine, events: EventQueue, now: float) -> None:
        self.stats.n_scheduling_passes += 1
        started = self.scheduler.select_jobs(now, machine)
        for record in started:
            machine.start(record, now)
            self.scheduler.on_start(record, now)
            self.predictor.on_start(record, now)
            events.push(
                Event(
                    time=now + record.runtime,
                    kind=EventType.FINISH,
                    job_id=record.job_id,
                )
            )
            self._push_expiry(record, events)


def simulate(
    trace: Trace,
    scheduler: Scheduler,
    predictor: Predictor,
    corrector: Corrector | None = None,
    min_prediction: float = 60.0,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(
        trace,
        scheduler,
        predictor,
        corrector=corrector,
        min_prediction=min_prediction,
    ).run()
