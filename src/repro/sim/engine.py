"""The discrete-event scheduling simulator (batch entry points).

Drives a trace through a scheduler with a predictor and a correction
mechanism -- the "heuristic triple" of the paper.  The engine is the only
component that knows actual runtimes; schedulers see predictions, and
predictors learn only from completions.

The event loop itself lives in :class:`repro.sim.session.SimSession`,
the incremental streaming API; :class:`Simulator` and :func:`simulate`
are thin batch shims that feed a whole trace into a fresh session and
drain it.  The loop semantics (matching pyss and the paper's on-line
setting) are unchanged -- schedules are byte-identical to the pre-session
engine, so ``ENGINE_VERSION`` did not move:

* all events at one timestamp are processed before any scheduling
  decision, in FINISH < EXPIRE < SUBMIT order;
* one scheduling pass runs after each batch of events;
* a running job whose *predicted* end passes without completion triggers
  the correction mechanism, bumping its prediction version; stale expiry
  events are dropped;
* corrections landing on the same timestamp (an EXPIRE *storm*, common
  with aggressive predictors) are applied to the corrector per job but
  reported to the scheduler as **one batch** per timestamp
  (:meth:`repro.sched.base.Scheduler.on_corrections`), so incremental
  availability structures re-sort/rebuild once instead of per job;
* predictions are clamped to ``[min_prediction, requested_time]``; jobs
  reaching their requested time finish there (SWF semantics guarantee
  ``runtime <= requested_time``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..workload.trace import Trace
from .results import SimulationResult
from .session import SimSession

if TYPE_CHECKING:  # imported for type hints only; avoids an import cycle
    from ..correct.base import Corrector
    from ..obs.telemetry import Telemetry
    from ..predict.base import Predictor
    from ..sched.base import Scheduler

__all__ = ["Simulator", "EngineStats", "simulate", "ENGINE_VERSION"]

#: Bumped whenever engine or scheduler semantics could change simulation
#: outcomes; campaign cache keys embed it so stale results never survive
#: an engine change.  Version 2: incremental profile-based scheduling
#: (the session refactor kept schedules byte-identical, so no bump).
ENGINE_VERSION = 2

#: Internals that moved to :class:`SimSession`; accessing them on a
#: Simulator is deprecated and delegates to the most recent session.
_SESSION_INTERNALS = frozenset(
    {"_handle_submit", "_handle_finish", "_handle_expire", "_push_expiry",
     "_schedule_pass"}
)


@dataclass
class EngineStats:
    """Run-level counters (not per-job)."""

    n_events: int = 0
    n_scheduling_passes: int = 0
    n_corrections: int = 0
    max_queue_length: int = 0


class Simulator:
    """One simulation = trace x scheduler x predictor x corrector.

    Batch compatibility wrapper: :meth:`run` feeds the whole trace into a
    fresh :class:`~repro.sim.session.SimSession` and drains it.  Code
    that needs incremental feeding, live queries or machine events should
    hold a session directly.
    """

    def __init__(
        self,
        trace: Trace,
        scheduler: Scheduler,
        predictor: Predictor,
        corrector: Corrector | None = None,
        min_prediction: float = 60.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if min_prediction <= 0:
            raise ValueError("min_prediction must be positive")
        self.trace = trace
        self.scheduler = scheduler
        self.predictor = predictor
        self.corrector = corrector
        self.min_prediction = float(min_prediction)
        self.telemetry = telemetry
        self.stats = EngineStats()
        self._session: SimSession | None = None

    def session(self) -> SimSession:
        """A fresh session wired with this simulator's components."""
        session = SimSession(
            self.trace.processors,
            self.scheduler,
            self.predictor,
            self.corrector,
            min_prediction=self.min_prediction,
            trace_name=self.trace.name,
            telemetry=self.telemetry,
        )
        self._session = session
        self.stats = session.stats
        return session

    def run(self) -> SimulationResult:
        """Execute the full trace; returns when every job has completed."""
        session = self.session()
        session.feed(self.trace)
        session.drain()
        return session.result()

    def __getattr__(self, name: str):
        # Legacy event-handler internals live on the session now; keep
        # them reachable (with a warning) for out-of-tree pokers.
        if name in _SESSION_INTERNALS:
            warnings.warn(
                f"Simulator.{name} moved to repro.sim.session.SimSession; "
                "drive a session directly instead of Simulator internals",
                DeprecationWarning,
                stacklevel=2,
            )
            session = self.__dict__.get("_session")
            if session is None:
                raise AttributeError(
                    f"Simulator.{name} is only available after run() started "
                    "a session (and is deprecated; use SimSession)"
                )
            return getattr(session, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )


def simulate(
    trace: Trace,
    scheduler: Scheduler,
    predictor: Predictor,
    corrector: Corrector | None = None,
    min_prediction: float = 60.0,
    telemetry: Telemetry | None = None,
) -> SimulationResult:
    """Convenience wrapper: one batch run over a session."""
    return Simulator(
        trace,
        scheduler,
        predictor,
        corrector=corrector,
        min_prediction=min_prediction,
        telemetry=telemetry,
    ).run()
