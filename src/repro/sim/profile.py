"""Processor-availability profile over future time.

Used by conservative backfilling (every queued job holds a reservation)
and by tests as an independent oracle for EASY's shadow-time computation.

The profile is a step function ``available(t)`` represented by sorted
breakpoints; the final segment extends to infinity.  All mutating
operations preserve the invariants ``0 <= available(t) <= m`` and strictly
increasing breakpoint times.
"""

from __future__ import annotations

import bisect
import math

__all__ = ["AvailabilityProfile"]


class AvailabilityProfile:
    """Step function of free processors from ``now`` to infinity."""

    def __init__(self, processors: int, now: float, free: int | None = None) -> None:
        if processors <= 0:
            raise ValueError("processors must be positive")
        free = processors if free is None else free
        if not 0 <= free <= processors:
            raise ValueError(f"free={free} out of range [0, {processors}]")
        self.processors = int(processors)
        self._times: list[float] = [now]
        self._avail: list[int] = [int(free)]

    # -- construction --------------------------------------------------------
    @classmethod
    def from_releases(
        cls,
        processors: int,
        now: float,
        free: int,
        releases: list[tuple[float, int]],
    ) -> AvailabilityProfile:
        """Build the profile implied by running jobs' (end, width) pairs."""
        profile = cls(processors, now, free)
        for end_time, width in releases:
            profile.add_release(max(end_time, now), width)
        return profile

    def add_release(self, time: float, processors: int) -> None:
        """From ``time`` onwards, ``processors`` more become available."""
        if processors <= 0:
            raise ValueError("released processors must be positive")
        self._apply_delta(time, math.inf, processors)

    # -- queries --------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        """Number of step-function segments (profile-sweep length)."""
        return len(self._times)

    @property
    def terminal_available(self) -> int:
        """Availability of the infinite final segment (steady state).

        Equals the machine size minus any drained capacity: every running
        job eventually releases, but drained processors never do.  A job
        wider than this can never fit on the profile.
        """
        return self._avail[-1]

    def available_at(self, time: float) -> int:
        """Free processors at ``time`` (>= profile start)."""
        if time < self._times[0]:
            raise ValueError(f"query at {time} precedes profile start {self._times[0]}")
        idx = bisect.bisect_right(self._times, time) - 1
        return self._avail[idx]

    def min_available(self, start: float, duration: float) -> int:
        """Minimum availability over ``[start, start + duration)``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        end = start + duration
        idx = bisect.bisect_right(self._times, start) - 1
        lowest = self._avail[idx]
        idx += 1
        while idx < len(self._times) and self._times[idx] < end:
            lowest = min(lowest, self._avail[idx])
            idx += 1
        return lowest

    def earliest_fit(self, processors: int, duration: float, not_before: float) -> float:
        """Earliest ``t >= not_before`` where ``processors`` stay free for
        ``duration`` seconds.

        Always exists because the final segment extends to infinity --
        provided ``processors <= m`` and every reservation eventually ends.

        Single left-to-right sweep over the segments, O(segments): the
        candidate anchor advances past every under-capacity segment and a
        fit is declared once a clean window of length ``duration`` has
        been crossed.  Equivalent to (but much faster than) probing
        ``min_available`` from every breakpoint in turn.
        """
        if processors > self.processors:
            raise ValueError(
                f"cannot fit {processors} processors on an {self.processors}-machine"
            )
        times = self._times
        avail = self._avail
        n = len(times)
        anchor = max(not_before, times[0])
        # first segment overlapping the anchor
        idx = bisect.bisect_right(times, anchor) - 1
        while idx < n:
            if avail[idx] < processors:
                # segment under capacity: the window must start after it
                idx += 1
                if idx >= n:
                    break
                anchor = times[idx]
                continue
            # segment has capacity; does the clean window reach anchor + duration?
            if idx + 1 >= n or times[idx + 1] >= anchor + duration:
                return anchor
            idx += 1
        raise AssertionError(
            "no fit found; the final profile segment should make this impossible"
        )

    # -- mutation ---------------------------------------------------------------
    def reserve(self, start: float, duration: float, processors: int) -> None:
        """Subtract ``processors`` over ``[start, start + duration)``.

        Raises :class:`ValueError` if the interval lacks capacity, so a
        buggy caller cannot silently oversubscribe the machine.
        """
        if self.min_available(start, duration) < processors:
            raise ValueError(
                f"reserving {processors} procs over [{start}, {start + duration}) "
                "exceeds availability"
            )
        self._apply_delta(start, start + duration, -processors)

    def _ensure_breakpoint(self, time: float) -> int:
        """Make ``time`` a breakpoint and return its index."""
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            raise ValueError(f"time {time} precedes profile start {self._times[0]}")
        if self._times[idx] == time:
            return idx
        self._times.insert(idx + 1, time)
        self._avail.insert(idx + 1, self._avail[idx])
        return idx + 1

    def _apply_delta(self, start: float, end: float, delta: int) -> None:
        first = self._ensure_breakpoint(start)
        if math.isinf(end):
            last = len(self._times)
        else:
            last = self._ensure_breakpoint(end)
        for idx in range(first, last):
            new_value = self._avail[idx] + delta
            if not 0 <= new_value <= self.processors:
                raise ValueError(
                    f"availability {new_value} out of [0, {self.processors}] "
                    f"at t={self._times[idx]}"
                )
            self._avail[idx] = new_value
        self._coalesce()

    def _apply_deltas(self, deltas: list[tuple[float, int | float, int]]) -> None:
        """Apply several ``[start, end) += delta`` updates in one sweep.

        Equivalent to calling :meth:`_apply_delta` per triple, but the
        step function is rebuilt once: the delta edges are merged with the
        existing breakpoints in a single left-to-right pass (already
        coalesced), so a batch of k updates over S segments costs
        O(S + k log k) instead of k splice-and-coalesce passes.
        """
        if not deltas:
            return
        if len(deltas) == 1:
            start, end, delta = deltas[0]
            self._apply_delta(start, end, delta)
            return
        edges: dict[float, int] = {}
        for start, end, delta in deltas:
            if start < self._times[0]:
                raise ValueError(
                    f"time {start} precedes profile start {self._times[0]}"
                )
            if end <= start:
                continue
            edges[start] = edges.get(start, 0) + delta
            if not math.isinf(end):
                edges[end] = edges.get(end, 0) - delta
        bounds = sorted(edges)
        times, avail = self._times, self._avail
        n, m = len(times), len(bounds)
        new_times: list[float] = []
        new_avail: list[int] = []
        i = j = 0
        acc = 0  # running sum of the delta edges crossed so far
        base = avail[0]  # availability of the current original segment
        while i < n or j < m:
            if j >= m or (i < n and times[i] <= bounds[j]):
                t = times[i]
                base = avail[i]
                if j < m and bounds[j] == t:
                    acc += edges[t]
                    j += 1
                i += 1
            else:
                t = bounds[j]
                acc += edges[t]
                j += 1
            value = base + acc
            if not 0 <= value <= self.processors:
                raise ValueError(
                    f"availability {value} out of [0, {self.processors}] at t={t}"
                )
            if not new_times or value != new_avail[-1]:
                new_times.append(t)
                new_avail.append(value)
        self._times = new_times
        self._avail = new_avail

    def _coalesce(self) -> None:
        """Merge adjacent segments with equal availability."""
        times = [self._times[0]]
        avail = [self._avail[0]]
        for t, a in zip(self._times[1:], self._avail[1:], strict=True):
            if a != avail[-1]:
                times.append(t)
                avail.append(a)
        self._times = times
        self._avail = avail

    # -- introspection -------------------------------------------------------
    def steps(self) -> list[tuple[float, int]]:
        """The (time, availability) breakpoints, for tests and display."""
        return list(zip(self._times, self._avail, strict=True))
