"""Machine model: a pool of ``m`` identical processors.

The paper's platform model has no interconnect topology; a job needs
``q_j`` processors for ``p_j`` seconds.  State is therefore count-based
(O(running jobs), never O(m)), which keeps 80k-processor machines free.

The machine tracks, for every running job, both the *actual* end time
(engine-side omniscience, used to fire FINISH events) and the *predicted*
end time (scheduler-side knowledge, used for shadow/reservation
computations).  Schedulers only ever read the predicted side.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from .results import JobRecord

__all__ = ["Machine", "RunningJob"]


@dataclass(slots=True)
class RunningJob:
    """Book-keeping for one running job."""

    record: JobRecord
    start_time: float

    @property
    def processors(self) -> int:
        return self.record.processors

    @property
    def predicted_end(self) -> float:
        return self.start_time + self.record.predicted_runtime

    @property
    def actual_end(self) -> float:
        return self.start_time + self.record.runtime


class Machine:
    """A pool of identical processors with running-job book-keeping."""

    def __init__(self, processors: int) -> None:
        if processors <= 0:
            raise ValueError(f"machine must have > 0 processors, got {processors}")
        self.processors = int(processors)
        self.free = int(processors)
        #: processors taken offline by drain events (live sessions only).
        self.drained = 0
        self._running: dict[int, RunningJob] = {}

    def __repr__(self) -> str:
        return (
            f"Machine(m={self.processors}, free={self.free}, "
            f"drained={self.drained}, running={len(self._running)})"
        )

    @property
    def running(self) -> Iterable[RunningJob]:
        """View of the currently running jobs (no ordering guarantee)."""
        return self._running.values()

    @property
    def n_running(self) -> int:
        return len(self._running)

    def fits(self, processors: int) -> bool:
        """Whether a job of the given width can start right now."""
        return processors <= self.free

    def start(self, record: JobRecord, now: float) -> RunningJob:
        """Allocate processors to a job. The caller pushes FINISH/EXPIRE."""
        if record.job_id in self._running:
            raise ValueError(f"job {record.job_id} is already running")
        if record.processors > self.free:
            raise ValueError(
                f"job {record.job_id} needs {record.processors} processors, "
                f"only {self.free} free"
            )
        if record.predicted_runtime <= 0:
            raise ValueError(
                f"job {record.job_id} has no positive predicted runtime; "
                "predict before starting"
            )
        self.free -= record.processors
        record.start_time = now
        run = RunningJob(record=record, start_time=now)
        self._running[record.job_id] = run
        return run

    def finish(self, job_id: int, now: float) -> JobRecord:
        """Release a job's processors and stamp its end time."""
        try:
            run = self._running.pop(job_id)
        except KeyError:
            raise ValueError(f"job {job_id} is not running") from None
        self.free += run.processors
        if self.free > self.processors:
            raise AssertionError("machine freed more processors than it has")
        run.record.end_time = now
        return run.record

    # -- capacity events (live sessions) ------------------------------------
    def drain(self, processors: int) -> None:
        """Take currently-*free* processors offline (node drain).

        Mirrors a resource manager that waits for nodes to empty before
        draining them: a drain wider than the free pool is rejected.
        """
        if processors <= 0:
            raise ValueError(f"drained processors must be > 0, got {processors}")
        if processors > self.free:
            raise ValueError(
                f"cannot drain {processors} processors: only {self.free} free "
                f"(drain waits for busy nodes to empty)"
            )
        self.free -= processors
        self.drained += processors

    def restore(self, processors: int) -> None:
        """Bring drained processors back online."""
        if processors <= 0:
            raise ValueError(f"restored processors must be > 0, got {processors}")
        if processors > self.drained:
            raise ValueError(
                f"cannot restore {processors} processors: only "
                f"{self.drained} drained"
            )
        self.drained -= processors
        self.free += processors

    def is_running(self, job_id: int) -> bool:
        return job_id in self._running

    def get_running(self, job_id: int) -> RunningJob:
        return self._running[job_id]

    def predicted_releases(self, now: float) -> list[tuple[float, int]]:
        """(predicted end, processors) per running job, soonest first.

        Predicted ends are clamped to ``now``: a job whose prediction just
        expired is treated as "about to finish" until its correction lands,
        which is the most optimistic consistent view.
        """
        releases = [
            (max(run.predicted_end, now), run.processors) for run in self._running.values()
        ]
        releases.sort()
        return releases

    def check_invariants(self) -> None:
        """Assert conservation of processors (used by tests)."""
        used = sum(run.processors for run in self._running.values())
        if used + self.free + self.drained != self.processors:
            raise AssertionError(
                f"processor leak: used={used} free={self.free} "
                f"drained={self.drained} m={self.processors}"
            )
