"""Incremental simulation sessions: the engine as a streaming API.

The batch entry points (:class:`repro.sim.engine.Simulator` and
:func:`repro.sim.engine.simulate`) drain a finished trace and exit.  A
:class:`SimSession` is the same event loop opened up for *live* use: jobs,
externally-observed completions and machine capacity events can be fed in
while the session runs, time advances monotonically under caller control,
and "when will this job start?" queries are answered from the current
availability profile without mutating any scheduling state.

The loop body is byte-for-byte the batch semantics (the batch wrappers
are now thin shims over a session), so a session that is fed a whole
trace and drained produces schedules identical to ``Simulator.run()``:

* all events at one timestamp are processed before any scheduling
  decision, in FINISH < EXPIRE < SUBMIT < MACHINE order (see
  :mod:`repro.sim.events` for the full tie-breaking contract);
* one scheduling pass runs after each batch of events;
* a running job whose *predicted* end passes without completion triggers
  the correction mechanism; corrections landing on one timestamp are
  reported to the scheduler as one batch;
* predictions are clamped to ``[min_prediction, requested_time]``.

Monotonic time
--------------

``session.now`` never goes backwards.  ``feed()`` rejects jobs submitted
behind the clock, ``advance_to()`` rejects a target behind the clock,
and the event queue itself asserts the same floor -- so a streaming feed
cannot silently diverge from what a batch replay of the same jobs would
have produced.  Equivalence with batch replay holds whenever every job
is fed before the clock passes its submit time.

Queries
-------

:meth:`SimSession.query` answers with an :class:`EstimatedStart`: for a
waiting job, the start time it would get if every queued job took a
reservation *in queue-priority order* on the current predicted
availability profile (exactly conservative backfilling's allocation; for
EASY it is the guaranteed-bound analogue of the head's reservation).
Queries are side-effect-free and memoised until the next state change,
so a hot session answers repeated queries in microseconds.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING

from ..obs.telemetry import NOOP
from ..workload.job import Job
from .events import Event, EventQueue, EventType
from .machine import Machine
from .results import JobRecord, SimulationResult

if TYPE_CHECKING:  # imported for type hints only; avoids an import cycle
    from ..correct.base import Corrector
    from ..obs.telemetry import Telemetry
    from ..predict.base import Predictor
    from ..sched.base import Scheduler
    from .engine import EngineStats

__all__ = [
    "SimSession",
    "EstimatedStart",
    "SessionSnapshot",
    "MachineEvent",
    "MonotonicityError",
]


class MonotonicityError(ValueError):
    """An operation tried to move the session's clock backwards."""


@dataclass(frozen=True, slots=True)
class MachineEvent:
    """A capacity change: drain (remove) or restore (give back) nodes.

    Drains take processors out of the *free* pool -- a drain wider than
    the currently free capacity is rejected when the event is processed,
    mirroring how a resource manager waits for nodes to empty before
    draining them.  Restores may not exceed the drained total.
    """

    time: float
    kind: str  # "drain" | "restore"
    processors: int

    def __post_init__(self) -> None:
        if self.kind not in ("drain", "restore"):
            raise ValueError(
                f"machine event kind must be 'drain' or 'restore', got {self.kind!r}"
            )
        if self.processors <= 0:
            raise ValueError(
                f"machine event processors must be > 0, got {self.processors}"
            )
        if self.time < 0:
            raise ValueError(f"machine event time must be >= 0, got {self.time}")


@dataclass(frozen=True, slots=True)
class EstimatedStart:
    """Answer to a "when will this job start?" query."""

    job_id: int
    #: session clock when the query was answered.
    query_time: float
    #: estimated (waiting/hypothetical) or actual (running/finished) start.
    start_time: float
    #: "waiting" | "running" | "finished" | "hypothetical".
    state: str
    #: the predicted runtime the estimate was computed with (clamped).
    predicted_runtime: float

    @property
    def wait(self) -> float:
        """Estimated remaining wait from the query instant (>= 0)."""
        return max(self.start_time - self.query_time, 0.0)


@dataclass(frozen=True)
class SessionSnapshot:
    """Read-only view of a session's queue/machine/predictor state."""

    now: float
    processors: int
    free: int
    drained: int
    n_pending_events: int
    n_finished: int
    #: waiting jobs in queue-priority order: (job_id, processors, predicted).
    waiting: tuple[tuple[int, int, float], ...]
    #: running jobs sorted by id: (job_id, start_time, predicted_end).
    running: tuple[tuple[int, float, float], ...]
    scheduler: str
    predictor: str
    corrector: str
    stats: EngineStats


class SimSession:
    """An open-ended simulation accepting live jobs, events and queries."""

    def __init__(
        self,
        processors: int,
        scheduler: Scheduler,
        predictor: Predictor,
        corrector: Corrector | None = None,
        *,
        min_prediction: float = 60.0,
        start_time: float = 0.0,
        trace_name: str = "",
        telemetry: Telemetry | None = None,
    ) -> None:
        from .engine import EngineStats  # local: engine imports this module

        if min_prediction <= 0:
            raise ValueError("min_prediction must be positive")
        if start_time < 0:
            raise ValueError("start_time must be >= 0")
        #: instrumentation registry; the NOOP singleton keeps every hot
        #: path at one ``enabled`` check when telemetry is off
        self.telemetry = telemetry if telemetry is not None else NOOP
        self.scheduler = scheduler
        self.predictor = predictor
        self.corrector = corrector
        self.min_prediction = float(min_prediction)
        self.trace_name = trace_name
        self.stats = EngineStats()
        self._machine = Machine(processors)
        self._events = EventQueue()
        self._records: dict[int, JobRecord] = {}
        self._now = float(start_time)
        self._corrected: list[JobRecord] = []
        #: MACHINE events by sequence id (the Event.job_id field).
        self._machine_events: dict[int, MachineEvent] = {}
        self._machine_seq = 0
        #: memoised waiting-queue start estimates; dropped on any mutation.
        self._query_cache: dict[int, float] | None = None

    # -- introspection -------------------------------------------------------
    @property
    def now(self) -> float:
        """The session clock (monotonic; never rewinds)."""
        return self._now

    @property
    def machine(self) -> Machine:
        """The machine (treat as read-only; mutate via events only)."""
        return self._machine

    @property
    def n_pending_events(self) -> int:
        return len(self._events)

    @property
    def n_jobs(self) -> int:
        """Jobs fed so far (waiting + running + finished)."""
        return len(self._records)

    @property
    def query_cache_warm(self) -> bool:
        """True when the next waiting-start query is served memoised."""
        return self._query_cache is not None

    def record(self, job_id: int) -> JobRecord:
        """The (live, mutable) record of a fed job."""
        try:
            return self._records[job_id]
        except KeyError:
            raise ValueError(f"job {job_id} was never fed to this session") from None

    def snapshot(self) -> SessionSnapshot:
        """A read-only snapshot of queue, machine and run counters."""
        waiting = tuple(
            (r.job_id, r.processors, r.predicted_runtime) for r in self.scheduler.queue
        )
        running = tuple(
            sorted(
                (run.record.job_id, run.start_time, run.predicted_end)
                for run in self._machine.running
            )
        )
        return SessionSnapshot(
            now=self._now,
            processors=self._machine.processors,
            free=self._machine.free,
            drained=self._machine.drained,
            n_pending_events=len(self._events),
            n_finished=sum(1 for r in self._records.values() if r.finished),
            waiting=waiting,
            running=running,
            scheduler=self.scheduler.name,
            predictor=self.predictor.name,
            corrector=self.corrector.name if self.corrector else "none",
            stats=replace(self.stats),
        )

    # -- feeding -------------------------------------------------------------
    def feed(self, jobs: Iterable[Job] | Job) -> int:
        """Queue SUBMIT events for jobs; returns how many were fed.

        Jobs must not be behind the clock (``submit_time >= now``) and
        must carry session-unique ids.  Feeding in trace order keeps
        streaming byte-identical to batch replay (see module docstring).
        """
        if isinstance(jobs, Job):
            jobs = (jobs,)
        count = 0
        for job in jobs:
            if job.submit_time < self._now:
                raise MonotonicityError(
                    f"job {job.job_id} submitted at t={job.submit_time}, behind "
                    f"the session clock t={self._now}"
                )
            if job.job_id in self._records:
                raise ValueError(f"job {job.job_id} was already fed")
            self._records[job.job_id] = JobRecord(job=job)
            self._events.push(
                Event(time=job.submit_time, kind=EventType.SUBMIT, job_id=job.job_id)
            )
            count += 1
        if count:
            self._query_cache = None
        return count

    def feed_machine_event(
        self,
        event: MachineEvent | None = None,
        *,
        time: float | None = None,
        kind: str | None = None,
        processors: int | None = None,
    ) -> MachineEvent:
        """Queue a capacity change (drain/restore), by object or fields."""
        if event is None:
            event = MachineEvent(
                time=self._now if time is None else float(time),
                kind=kind or "",
                processors=0 if processors is None else int(processors),
            )
        if event.time < self._now:
            raise MonotonicityError(
                f"machine event at t={event.time} is behind the session "
                f"clock t={self._now}"
            )
        self._machine_seq += 1
        self._machine_events[self._machine_seq] = event
        self._events.push(
            Event(time=event.time, kind=EventType.MACHINE, job_id=self._machine_seq)
        )
        self._query_cache = None
        return event

    # -- time ----------------------------------------------------------------
    def step(self) -> float | None:
        """Process the next pending timestamp completely; returns it.

        One step = every event at the earliest pending instant, the
        batched correction notification, and one scheduling pass --
        exactly one iteration of the batch loop.  Returns None (and does
        nothing) when no events are pending.
        """
        if not self._events:
            return None
        now = self._events.peek_time()
        self._process_timestamp(now)
        return now

    def advance_to(self, time: float) -> int:
        """Process every timestamp up to and including ``time``; move the
        clock to ``time``.  Returns the number of timestamps processed."""
        if time < self._now:
            raise MonotonicityError(
                f"cannot advance to t={time}, behind the session clock t={self._now}"
            )
        steps = 0
        while self._events and self._events.peek_time() <= time:
            self.step()
            steps += 1
        if time > self._now:
            self._now = float(time)
            self._query_cache = None
        return steps

    def drain(self) -> int:
        """Process everything pending; returns timestamps processed."""
        steps = 0
        while self.step() is not None:
            steps += 1
        return steps

    # -- queries -------------------------------------------------------------
    def query(
        self, job: Job | None = None, *, job_id: int | None = None
    ) -> EstimatedStart:
        """Estimate when a job starts, without mutating any state.

        Pass ``job_id`` (or a fed ``job``) for session jobs: waiting jobs
        get a reservation-profile estimate, running/finished jobs their
        actual start.  Pass an unknown ``job`` for a hypothetical
        "where would this land?" probe -- it is predicted with the
        predictor's pure :meth:`~repro.predict.base.Predictor.estimate`
        entry point and appended behind the current queue.
        """
        if job is not None and job_id is None and job.job_id in self._records:
            job_id = job.job_id
        now = self._now
        if job_id is not None:
            record = self.record(job_id)
            if record.started:
                return EstimatedStart(
                    job_id=job_id,
                    query_time=now,
                    start_time=record.start_time,
                    state="finished" if record.finished else "running",
                    predicted_runtime=record.predicted_runtime,
                )
            starts = self._waiting_starts()
            if job_id not in starts:
                raise ValueError(
                    f"job {job_id} is fed but not yet submitted; advance the "
                    f"session to t={record.submit_time} first"
                )
            return EstimatedStart(
                job_id=job_id,
                query_time=now,
                start_time=starts[job_id],
                state="waiting",
                predicted_runtime=record.predicted_runtime,
            )
        if job is None:
            raise ValueError("query() needs a job or a job_id")
        probe = JobRecord(job=job)
        probe.predicted_runtime = self._clamp(
            float(self.predictor.estimate(probe, now)), job.requested_time
        )
        starts = self.scheduler.estimated_starts(now, self._machine, extra=(probe,))
        return EstimatedStart(
            job_id=job.job_id,
            query_time=now,
            start_time=starts[job.job_id],
            state="hypothetical",
            predicted_runtime=probe.predicted_runtime,
        )

    def _waiting_starts(self) -> dict[int, float]:
        if self._query_cache is None:
            self._query_cache = self.scheduler.estimated_starts(
                self._now, self._machine
            )
        return self._query_cache

    # -- live-session mutations ----------------------------------------------
    def complete(self, job_id: int, time: float | None = None) -> JobRecord:
        """Report that a job *actually* completed at ``time`` (default now).

        The external observation overrides the simulated runtime: the
        record's ``observed_runtime`` is stamped, pending simulated
        FINISH/EXPIRE events become stale, the predictor learns from the
        observed completion and a scheduling pass reuses the freed
        processors.  Advances the clock to ``time`` first; if the
        simulated finish already fired by then, the record is returned
        unchanged.
        """
        record = self.record(job_id)
        if time is None:
            time = self._now
        self.advance_to(time)  # raises MonotonicityError on a past time
        if not self._machine.is_running(job_id):
            if record.finished:
                return record
            raise ValueError(
                f"job {job_id} is not running at t={time}; only running jobs "
                "can be completed externally"
            )
        record.observed_runtime = max(time - record.start_time, 1e-9)
        record.version += 1  # pending EXPIRE events become stale
        self._machine.finish(job_id, time)
        self.predictor.on_finish(record, time)
        if self.telemetry.enabled:
            self._note_prediction_outcome(record, record.observed_runtime)
        self.scheduler.on_finish(record)
        self._query_cache = None
        self._schedule_pass(time)
        return record

    def observe_completion(self, job: Job, runtime: float) -> None:
        """Feed an out-of-band completion to the predictor only.

        Keeps per-user predictor state hot from jobs the session never
        scheduled (e.g. history replayed into a fresh ``repro serve``
        process); scheduling state is untouched.
        """
        self.predictor.observe(job, runtime, self._now)

    # -- results -------------------------------------------------------------
    def result(self, *, partial: bool = False) -> SimulationResult:
        """Freeze the finished records into a :class:`SimulationResult`.

        With ``partial=True`` unfinished jobs are dropped instead of
        raising, so a live session can report on what has completed.
        """
        records: Iterable[JobRecord] = self._records.values()
        if partial:
            records = [r for r in records if r.finished]
        return SimulationResult(
            records,
            machine_processors=self._machine.processors,
            trace_name=self.trace_name,
            scheduler_name=self.scheduler.name,
            predictor_name=self.predictor.name,
            corrector_name=self.corrector.name if self.corrector else "none",
        )

    # -- event loop (the batch semantics, one timestamp at a time) -----------
    def _process_timestamp(self, now: float) -> None:
        self._now = now
        self._query_cache = None
        tele = self.telemetry
        for event in self._events.drain_time(now):
            self.stats.n_events += 1
            if event.kind is EventType.SUBMIT:
                if tele.enabled:
                    tele.inc("engine.events.submit")
                self._handle_submit(self._records[event.job_id], now)
            elif event.kind is EventType.FINISH:
                if tele.enabled:
                    tele.inc("engine.events.finish")
                self._handle_finish(self._records[event.job_id], now)
            elif event.kind is EventType.EXPIRE:
                if tele.enabled:
                    tele.inc("engine.events.expire")
                self._handle_expire(event, self._records[event.job_id], now)
            else:  # MACHINE
                if tele.enabled:
                    tele.inc("engine.events.machine")
                self._handle_machine(self._machine_events.pop(event.job_id), now)
        if self._corrected:
            # one scheduler notification per timestamp: a correction
            # storm costs one structure re-sort/rebuild, not one per job
            if tele.enabled:
                tele.observe("engine.expire_storm.size", len(self._corrected))
            self.scheduler.on_corrections(self._corrected)
            self._corrected.clear()
        self._schedule_pass(now)

    def _clamp(self, raw: float, requested_time: float) -> float:
        return min(max(raw, self.min_prediction), requested_time)

    def _handle_submit(self, record: JobRecord, now: float) -> None:
        tele = self.telemetry
        if tele.enabled:
            t0 = perf_counter()
            raw = float(self.predictor.predict(record, now))
            tele.inc("engine.time.predict.seconds", perf_counter() - t0)
        else:
            raw = float(self.predictor.predict(record, now))
        if raw != raw or raw in (float("inf"), float("-inf")):
            raise ValueError(
                f"predictor {self.predictor.name!r} returned a non-finite "
                f"prediction for job {record.job_id}"
            )
        record.raw_prediction = raw
        clamped = self._clamp(raw, record.requested_time)
        record.initial_prediction = clamped
        record.predicted_runtime = clamped
        self.scheduler.on_submit(record)
        self.stats.max_queue_length = max(
            self.stats.max_queue_length, self.scheduler.queue_length
        )

    def _handle_finish(self, record: JobRecord, now: float) -> None:
        if not self._machine.is_running(record.job_id):
            return  # stale: the job was completed externally
        self._machine.finish(record.job_id, now)
        tele = self.telemetry
        if tele.enabled:
            t0 = perf_counter()
            self.predictor.on_finish(record, now)
            tele.inc("engine.time.predict.seconds", perf_counter() - t0)
            self._note_prediction_outcome(record, record.runtime)
        else:
            self.predictor.on_finish(record, now)
        self.scheduler.on_finish(record)

    def _note_prediction_outcome(self, record: JobRecord, runtime: float) -> None:
        """Online prediction-quality metrics, recorded as jobs finish."""
        tele = self.telemetry
        if not tele.enabled:
            return
        initial = record.initial_prediction
        if not initial:
            return  # never predicted by this session (no SUBMIT processed)
        tele.inc("predict.finished")
        error = initial - runtime
        if error < 0:
            tele.inc("predict.underestimates")
        tele.observe("predict.abs_error.seconds", abs(error))

    def _handle_expire(self, event: Event, record: JobRecord, now: float) -> None:
        if not self._machine.is_running(record.job_id):
            return  # stale: the job already finished
        if event.version != record.version:
            return  # stale: the prediction was corrected since
        if self.corrector is None:
            raise RuntimeError(
                f"job {record.job_id} under-predicted at t={now} but no "
                "correction mechanism is configured"
            )
        elapsed = now - record.start_time
        new_prediction = float(self.corrector.correct(record, now))
        # Contract enforcement: progress past the elapsed time, capped by
        # the requested time which upper-bounds any feasible runtime.
        new_prediction = min(
            max(new_prediction, elapsed + 1.0), record.requested_time
        )
        record.corrections += 1
        record.version += 1
        record.predicted_runtime = new_prediction
        self.stats.n_corrections += 1
        # the scheduler hears about the whole timestamp's corrections at
        # once (Scheduler.on_corrections), after the event drain
        self._corrected.append(record)
        self._push_expiry(record)

    def _handle_machine(self, event: MachineEvent, now: float) -> None:
        if event.kind == "drain":
            self._machine.drain(event.processors)
        else:
            self._machine.restore(event.processors)
        self.scheduler.on_machine_change(now, self._machine)

    def _push_expiry(self, record: JobRecord) -> None:
        """Schedule the next expiry if the prediction is still too small."""
        if record.predicted_runtime < record.runtime:
            self._events.push(
                Event(
                    time=record.start_time + record.predicted_runtime,
                    kind=EventType.EXPIRE,
                    job_id=record.job_id,
                    version=record.version,
                )
            )

    def _schedule_pass(self, now: float) -> None:
        self.stats.n_scheduling_passes += 1
        tele = self.telemetry
        if tele.enabled:
            queued_before = self.scheduler.queue_length
            t0 = perf_counter()
            started = self.scheduler.select_jobs(now, self._machine)
            tele.inc("engine.time.sched.seconds", perf_counter() - t0)
            tele.inc("engine.sched.passes")
            n_started = len(started)
            if n_started:
                tele.inc("engine.sched.jobs_started", n_started)
                if self.scheduler.queue_length:
                    # jobs left waiting means some head was held: every
                    # start past it this pass came from backfilling (an
                    # upper bound on true backfills -- phase-1 FCFS
                    # starts ahead of a later hold are included)
                    tele.inc("engine.sched.backfill_starts", n_started)
            elif queued_before:
                tele.inc("engine.sched.hold_passes")
            tele.observe("engine.sched.queue_length", queued_before)
            for key, value in self.scheduler.introspect().items():
                tele.observe(f"engine.sched.{key}", value)
        else:
            started = self.scheduler.select_jobs(now, self._machine)
        for record in started:
            self._machine.start(record, now)
            self.scheduler.on_start(record, now)
            self.predictor.on_start(record, now)
            self._events.push(
                Event(
                    time=now + record.runtime,
                    kind=EventType.FINISH,
                    job_id=record.job_id,
                )
            )
            self._push_expiry(record)
