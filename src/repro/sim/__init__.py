"""Event-driven scheduler simulator (pyss equivalent)."""

from .engine import EngineStats, Simulator, simulate
from .events import Event, EventQueue, EventType
from .machine import Machine, RunningJob
from .profile import AvailabilityProfile
from .results import JobRecord, SimulationResult
from .timeline import (
    ascii_timeline,
    occupancy_timeline,
    queue_timeline,
    utilization_profile,
)

__all__ = [
    "EngineStats",
    "Simulator",
    "simulate",
    "Event",
    "EventQueue",
    "EventType",
    "Machine",
    "RunningJob",
    "AvailabilityProfile",
    "JobRecord",
    "SimulationResult",
    "ascii_timeline",
    "occupancy_timeline",
    "queue_timeline",
    "utilization_profile",
]
