"""Event-driven scheduler simulator (pyss equivalent).

Two entry styles: the batch wrappers (:class:`Simulator`,
:func:`simulate`) drain a finished trace, and :class:`SimSession` is the
same engine opened up for incremental feeding, live queries and machine
events (the streaming simulation-as-a-service substrate).
"""

from .engine import EngineStats, Simulator, simulate
from .events import Event, EventQueue, EventType
from .machine import Machine, RunningJob
from .profile import AvailabilityProfile
from .results import JobRecord, SimulationResult
from .session import (
    EstimatedStart,
    MachineEvent,
    MonotonicityError,
    SessionSnapshot,
    SimSession,
)
from .timeline import (
    ascii_timeline,
    occupancy_timeline,
    queue_timeline,
    utilization_profile,
)

__all__ = [
    "EngineStats",
    "Simulator",
    "simulate",
    "SimSession",
    "EstimatedStart",
    "SessionSnapshot",
    "MachineEvent",
    "MonotonicityError",
    "Event",
    "EventQueue",
    "EventType",
    "Machine",
    "RunningJob",
    "AvailabilityProfile",
    "JobRecord",
    "SimulationResult",
    "ascii_timeline",
    "occupancy_timeline",
    "queue_timeline",
    "utilization_profile",
]
