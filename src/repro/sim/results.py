"""Per-job records and the result object returned by a simulation run.

A :class:`JobRecord` is the engine's mutable view of one job: static
description (from the trace), the evolving prediction, and the schedule
outcome.  :class:`SimulationResult` freezes the records after the run and
exposes the arrays the metrics layer consumes.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from ..workload.job import Job

__all__ = ["JobRecord", "SimulationResult"]


@dataclass(slots=True)
class JobRecord:
    """Mutable simulation state for one job."""

    job: Job
    #: prediction as returned by the predictor, before engine clamping.
    raw_prediction: float = 0.0
    #: prediction of the running time made at submission (seconds),
    #: clamped to [min_prediction, requested_time].
    initial_prediction: float = 0.0
    #: current predicted running time, updated by corrections.
    predicted_runtime: float = 0.0
    #: number of times the correction mechanism fired for this job.
    corrections: int = 0
    #: prediction version; bumped on every correction (staleness checks).
    version: int = 0
    start_time: float = -1.0
    end_time: float = -1.0
    #: actual runtime reported from *outside* the simulation (a live
    #: session's ``complete`` command); None on the batch path, where the
    #: trace's a-posteriori runtime is authoritative.
    observed_runtime: float | None = None

    # -- convenient job field proxies -------------------------------------
    @property
    def job_id(self) -> int:
        return self.job.job_id

    @property
    def submit_time(self) -> float:
        return self.job.submit_time

    @property
    def runtime(self) -> float:
        if self.observed_runtime is not None:
            return self.observed_runtime
        return self.job.runtime

    @property
    def processors(self) -> int:
        return self.job.processors

    @property
    def requested_time(self) -> float:
        return self.job.requested_time

    # -- schedule-derived quantities ---------------------------------------
    @property
    def started(self) -> bool:
        return self.start_time >= 0

    @property
    def finished(self) -> bool:
        return self.end_time >= 0

    @property
    def wait_time(self) -> float:
        """Time spent in the queue; requires the job to have started."""
        if not self.started:
            raise ValueError(f"job {self.job_id} never started")
        return self.start_time - self.submit_time

    @property
    def predicted_end(self) -> float:
        """Predicted completion time; requires the job to have started."""
        if not self.started:
            raise ValueError(f"job {self.job_id} has no predicted end before start")
        return self.start_time + self.predicted_runtime

    def bounded_slowdown(self, tau: float = 10.0) -> float:
        """The paper's bsld metric: max((wait + p) / max(p, tau), 1)."""
        return max((self.wait_time + self.runtime) / max(self.runtime, tau), 1.0)


class SimulationResult:
    """Immutable outcome of one simulation run."""

    def __init__(
        self,
        records: Iterable[JobRecord],
        machine_processors: int,
        trace_name: str = "",
        scheduler_name: str = "",
        predictor_name: str = "",
        corrector_name: str = "",
    ) -> None:
        self._records = sorted(records, key=lambda r: (r.submit_time, r.job_id))
        for rec in self._records:
            if not rec.finished:
                raise ValueError(
                    f"job {rec.job_id} did not finish; the simulation is incomplete"
                )
        self.machine_processors = machine_processors
        self.trace_name = trace_name
        self.scheduler_name = scheduler_name
        self.predictor_name = predictor_name
        self.corrector_name = corrector_name

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.trace_name!r}, n={len(self)}, "
            f"sched={self.scheduler_name!r}, pred={self.predictor_name!r}, "
            f"corr={self.corrector_name!r})"
        )

    # -- arrays for the metrics layer --------------------------------------
    def array(self, attribute: str) -> np.ndarray:
        """Per-job attribute values as a float array, in submit order."""
        return np.array([getattr(r, attribute) for r in self._records], dtype=float)

    @property
    def wait_times(self) -> np.ndarray:
        return self.array("wait_time")

    @property
    def runtimes(self) -> np.ndarray:
        return self.array("runtime")

    @property
    def initial_predictions(self) -> np.ndarray:
        return self.array("initial_prediction")

    @property
    def requested_times(self) -> np.ndarray:
        return self.array("requested_time")

    def bounded_slowdowns(self, tau: float = 10.0) -> np.ndarray:
        """Per-job bounded slowdowns (paper Section 5.3)."""
        waits = self.wait_times
        runs = self.runtimes
        return np.maximum((waits + runs) / np.maximum(runs, tau), 1.0)

    def avebsld(self, tau: float = 10.0) -> float:
        """AVEbsld, the paper's headline objective."""
        return float(self.bounded_slowdowns(tau).mean())

    def utilization(self) -> float:
        """Fraction of processor-time used between first start and last end."""
        if not self._records:
            return 0.0
        start = min(r.start_time for r in self._records)
        end = max(r.end_time for r in self._records)
        if end <= start:
            return 0.0
        area = sum(r.runtime * r.processors for r in self._records)
        return area / (self.machine_processors * (end - start))

    def total_corrections(self) -> int:
        """How many prediction-expiry corrections happened over the run."""
        return sum(r.corrections for r in self._records)
