#!/usr/bin/env python
"""Examples smoke test (CI).

Runs every ``examples/*.py`` as a subprocess with ``REPRO_EXAMPLE_JOBS``
shrunk so the whole sweep finishes in CI time, and asserts that each

1. exits 0 with no traceback on stderr;
2. prints a non-trivial amount of output (examples are documentation --
   an example that silently prints nothing is broken documentation);
3. mentions ``AVEbsld`` where it claims to report scheduling quality
   (every example except the pure-prediction demo).

The examples double as the public-API regression net: they import only
``repro``'s public surface, so a rename or a dropped export fails here
even when the unit suite (which imports submodules directly) stays
green.

Usage::

    python scripts/examples_smoke.py [--jobs 150] [--only quickstart]
"""

from __future__ import annotations

import argparse
import glob
import os
import subprocess
import sys
import time

_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
_SRC = os.path.join(_ROOT, "src")

# examples whose output legitimately never mentions AVEbsld
_NO_SCORE_OK = {"online_prediction_demo.py"}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=150,
                        help="REPRO_EXAMPLE_JOBS override (default 150)")
    parser.add_argument("--only", default=None,
                        help="substring filter on example filenames")
    args = parser.parse_args()

    paths = sorted(glob.glob(os.path.join(_ROOT, "examples", "*.py")))
    if args.only:
        paths = [p for p in paths if args.only in os.path.basename(p)]
    if not paths:
        print("FAIL: no examples matched", file=sys.stderr)
        return 1

    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_EXAMPLE_JOBS"] = str(args.jobs)

    failures = 0
    print(f"[examples-smoke] {len(paths)} example(s), "
          f"REPRO_EXAMPLE_JOBS={args.jobs}")
    for path in paths:
        name = os.path.basename(path)
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, path],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        dt = time.perf_counter() - t0
        problems = []
        if proc.returncode != 0:
            problems.append(f"exit {proc.returncode}")
        if "Traceback" in proc.stderr:
            problems.append("traceback on stderr")
        if len(proc.stdout.strip()) < 80:
            problems.append(f"only {len(proc.stdout.strip())} bytes of output")
        if name not in _NO_SCORE_OK and "AVEbsld" not in proc.stdout:
            problems.append("no AVEbsld in output")
        if problems:
            failures += 1
            print(f"[examples-smoke] FAIL {name} ({dt:.1f}s): "
                  f"{'; '.join(problems)}", file=sys.stderr)
            tail = "\n".join((proc.stderr or proc.stdout).splitlines()[-15:])
            print(tail, file=sys.stderr)
        else:
            print(f"[examples-smoke] ok   {name} ({dt:.1f}s, "
                  f"{len(proc.stdout)} bytes)")

    if failures:
        print(f"[examples-smoke] {failures} failure(s)", file=sys.stderr)
        return 1
    print("[examples-smoke] all examples OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
