"""Serving-mode smoke test (CI).

Proves ``repro serve`` end to end, with a real subprocess and pipes:

1. synthesises a small SWF-style trace (runtimes clamped to the serving
   default ``min_prediction`` so the clairvoyant predictor is *exact*);
2. batch-runs it (conservative + clairvoyant) as the reference -- under
   conservative backfilling with exact predictions, the start estimate
   at submit time equals the start the batch schedule assigns;
3. derives a JSONL command script (submit+advance, query per job, then
   drain/result/stats/quit) and pipes it through
   ``repro serve --scheduler conservative --predictor clairvoyant``;
4. asserts every served query matches the batch start time, the final
   served schedule is identical to the batch one, and warm queries are
   answered in well under a millisecond of server-side time;
5. with ``--telemetry-dir`` it also reconciles the server's telemetry
   snapshot: ``serve.requests.total`` must equal the number of piped
   commands and the warm/cold/probe query counters must cover every
   query sent.

Exit code 0 only if every check passes.

Usage::

    python scripts/serve_smoke.py [--n-jobs 60] [--max-warm-us 1000]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.predict import ClairvoyantPredictor  # noqa: E402
from repro.sched import make_scheduler  # noqa: E402
from repro.sim import simulate  # noqa: E402
from repro.workload import Trace, get_trace  # noqa: E402

MIN_PREDICTION = 60.0


def build_trace(n_jobs: int) -> Trace:
    base = get_trace("KTH-SP2", n_jobs=n_jobs)
    jobs = [
        job.with_updates(
            runtime=max(job.runtime, MIN_PREDICTION),
            requested_time=max(job.requested_time, MIN_PREDICTION),
        )
        for job in base
    ]
    return Trace(jobs, processors=base.processors, name="serve-smoke")


def command_script(trace: Trace) -> list[dict]:
    commands: list[dict] = []
    for job in trace:
        commands.append(
            {
                "cmd": "submit",
                "advance": True,
                "job": {
                    "job_id": job.job_id,
                    "submit_time": job.submit_time,
                    "processors": job.processors,
                    "requested_time": job.requested_time,
                    "runtime": job.runtime,
                    "user": job.user,
                },
            }
        )
        commands.append({"cmd": "query", "job_id": job.job_id})
    commands += [{"cmd": "drain"}, {"cmd": "result"}, {"cmd": "stats"},
                 {"cmd": "quit"}]
    return commands


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-jobs", type=int, default=60)
    parser.add_argument(
        "--max-warm-us", type=float, default=1000.0,
        help="bound on the median server-side warm-query time (microseconds)",
    )
    parser.add_argument(
        "--telemetry-dir", default=None,
        help="run the server with --telemetry DIR and reconcile its "
        "request counters against the piped command script",
    )
    args = parser.parse_args(argv)

    trace = build_trace(args.n_jobs)
    batch = simulate(
        trace, make_scheduler("conservative"), ClairvoyantPredictor(),
        min_prediction=MIN_PREDICTION,
    )
    batch_rows = sorted([r.job_id, r.start_time, r.end_time] for r in batch)
    batch_starts = {r.job_id: r.start_time for r in batch}

    commands = command_script(trace)
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    serve_cmd = [sys.executable, "-m", "repro", "serve",
                 "--processors", str(trace.processors),
                 "--scheduler", "conservative",
                 "--predictor", "clairvoyant",
                 "--corrector", "none"]
    if args.telemetry_dir:
        serve_cmd += ["--telemetry", args.telemetry_dir]
    proc = subprocess.run(
        serve_cmd,
        input="".join(json.dumps(c) + "\n" for c in commands),
        capture_output=True, text=True, env=env, timeout=300,
    )
    print(proc.stderr.strip())
    if proc.returncode != 0:
        print(f"FAIL: repro serve exited {proc.returncode}")
        return 1
    responses = [json.loads(line) for line in proc.stdout.splitlines()]
    if len(responses) != len(commands):
        print(f"FAIL: {len(commands)} command(s) but {len(responses)} response(s)")
        return 1
    bad = [r for r in responses if not r.get("ok")]
    if bad:
        print(f"FAIL: {len(bad)} error response(s), first: {bad[0]}")
        return 1
    by_cmd: dict[str, list[dict]] = {}
    for response in responses:
        by_cmd.setdefault(response["cmd"], []).append(response)

    failures = 0
    query_times: list[float] = []
    for answer in by_cmd["query"]:
        query_times.append(answer["elapsed_us"])
        expected = batch_starts[answer["job_id"]]
        if answer["start"] != expected:
            print(
                f"FAIL: job {answer['job_id']} served start {answer['start']} "
                f"!= batch start {expected}"
            )
            failures += 1
    served_rows = by_cmd["result"][0]["jobs"]
    if served_rows != batch_rows:
        print("FAIL: served schedule differs from the batch schedule")
        failures += 1

    # warm latency: ignore the first few queries (cold caches/imports)
    warm = query_times[min(5, len(query_times) - 1):]
    median_us = statistics.median(warm)
    worst_us = max(warm)
    print(
        f"queries: {len(query_times)}, warm median {median_us:.0f}us, "
        f"warm worst {worst_us:.0f}us (bound {args.max_warm_us:.0f}us on median)"
    )
    if median_us >= args.max_warm_us:
        print("FAIL: warm queries slower than the bound")
        failures += 1

    if args.telemetry_dir:
        from repro.obs import load_snapshots

        snapshots = [
            s for s in load_snapshots(args.telemetry_dir)
            if s["component"] == "serve"
        ]
        if not snapshots:
            print(f"FAIL: no serve telemetry snapshot under {args.telemetry_dir}")
            failures += 1
        else:
            counters = snapshots[0].get("counters", {})
            total = counters.get("serve.requests.total", 0)
            if total != len(commands):
                print(
                    f"FAIL: serve.requests.total={total} but "
                    f"{len(commands)} command(s) were piped"
                )
                failures += 1
            answered = (
                counters.get("serve.query.warm", 0)
                + counters.get("serve.query.cold", 0)
                + counters.get("serve.query.probe", 0)
            )
            if answered != len(query_times):
                print(
                    f"FAIL: warm+cold+probe query counters ({answered}) != "
                    f"{len(query_times)} quer(ies) sent"
                )
                failures += 1
            print(
                f"telemetry: {total:.0f} request(s), "
                f"{counters.get('serve.query.warm', 0):.0f} warm / "
                f"{counters.get('serve.query.cold', 0):.0f} cold quer(ies), "
                f"{counters.get('serve.errors', 0):.0f} error(s)"
            )

    if failures:
        return 1
    print(
        f"OK: {len(batch_rows)} job(s) served identical to batch, "
        f"{len(query_times)} quer(ies) exact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
