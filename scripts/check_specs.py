#!/usr/bin/env python
"""CI gate for the checked-in experiment spec files.

1. runs ``repro spec validate`` on every ``experiments/*.toml``;
2. runs ``repro spec expand --format keys`` on each (exercises the full
   CLI path, including the TOML fallback parser on Python 3.10);
3. asserts that ``experiments/paper.toml`` expands to **exactly** the
   128 legacy triple keys of :func:`repro.core.triples.campaign_triples`
   (in order), followed by the 2 clairvoyant reference keys;
4. asserts that ``experiments/sweeps.toml`` exercises the list-sweep
   syntax: 3 tau values x (1 + 2-eta-sweep) predictors = 9 cells.

Exits non-zero on any failure.  Usage::

    python scripts/check_specs.py [--experiments DIR]
"""

from __future__ import annotations

import argparse
import glob
import os
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.triples import campaign_triples, reference_triples  # noqa: E402


_SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiments", default="experiments")
    args = parser.parse_args()

    spec_files = sorted(glob.glob(os.path.join(args.experiments, "*.toml")))
    if not spec_files:
        print(f"FAIL: no spec files under {args.experiments}/", file=sys.stderr)
        return 1

    failures = 0
    print(f"[check-specs] validating {len(spec_files)} spec file(s)")
    proc = run_cli("spec", "validate", *spec_files)
    print(proc.stdout, end="")
    if proc.returncode != 0:
        print(f"FAIL: repro spec validate exited {proc.returncode}\n{proc.stderr}",
              file=sys.stderr)
        failures += 1

    for path in spec_files:
        proc = run_cli("spec", "expand", path, "--format", "keys")
        if proc.returncode != 0:
            print(f"FAIL: repro spec expand {path} exited {proc.returncode}\n"
                  f"{proc.stderr}", file=sys.stderr)
            failures += 1
            continue
        keys = [
            line for line in proc.stdout.splitlines()
            if line and not line.startswith(("#", "..."))
        ]
        print(f"[check-specs] {path}: {len(keys)} unique triple key(s)")
        if os.path.basename(path) == "paper.toml":
            want = [t.key for t in campaign_triples()]
            refs = [t.key for t in reference_triples()]
            if keys[: len(want)] != want:
                mismatch = next(
                    (i for i, (a, b) in enumerate(zip(keys, want, strict=False)) if a != b),
                    min(len(keys), len(want)),
                )
                print(
                    f"FAIL: paper.toml does not expand to the exact 128 "
                    f"campaign triple keys (first mismatch at index "
                    f"{mismatch})", file=sys.stderr,
                )
                failures += 1
            elif keys[len(want):] != refs:
                print("FAIL: paper.toml reference keys wrong", file=sys.stderr)
                failures += 1
            else:
                print(
                    f"[check-specs] paper.toml == the {len(want)} campaign "
                    f"triples + {len(refs)} references, exactly"
                )
        if os.path.basename(path) == "sweeps.toml":
            proc_cells = run_cli("spec", "expand", path, "--format", "json")
            cells = [
                line for line in proc_cells.stdout.splitlines()
                if line.startswith("{")
            ]
            # 3 tau values x (requested + 2 swept ml etas) x 1 log x 1 seed
            if len(cells) != 9:
                print(
                    f"FAIL: sweeps.toml expanded to {len(cells)} cell(s), "
                    f"expected 9 (tau x eta sweep)", file=sys.stderr,
                )
                failures += 1
            else:
                print("[check-specs] sweeps.toml == 9 swept cells, exactly")

    if failures:
        print(f"[check-specs] {failures} failure(s)", file=sys.stderr)
        return 1
    print("[check-specs] all spec files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
