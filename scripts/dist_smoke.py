"""Distributed-campaign smoke test (CI).

Proves the fsqueue dispatch subsystem end to end, with real processes:

1. runs a small campaign single-host (the reference);
2. runs the *same* campaign through ``repro campaign --backend fsqueue``
   coordinated over a tmp queue directory, drained by **two**
   ``repro worker`` subprocesses -- plus a third worker that is
   SIGKILLed mid-run to prove lease-expiry retry recovers its shard;
3. canonicalises both result caches (``repro.dist.merge``) and asserts
   they are **byte-identical**;
4. reconciles the workers' telemetry against the merged cache: every
   unique cell must be accounted for by a *surviving* worker's
   ``worker.cells.simulated + worker.cells.cached`` counters (survivors
   re-claim the victim's shard and serve its proven cells from the shard
   cache), claims and lease renewals must be non-zero, and the
   SIGKILLed victim must have left **no** snapshot (snapshots land only
   on clean exit);
5. leaves the merged cache at ``--out`` and the telemetry directory
   (``--telemetry-dir``) for CI artifact upload.

Exit code 0 only if every step, including the byte comparison and the
telemetry reconciliation, passes.

Usage::

    python scripts/dist_smoke.py --out merged_cache.jsonl [--n-jobs 120]
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.dist import merge_caches  # noqa: E402


def spawn(args: list[str], env: dict, log_path: str) -> subprocess.Popen:
    log = open(log_path, "w", encoding="utf-8")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env, stdout=log, stderr=subprocess.STDOUT,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="merged_cache.jsonl",
                        help="where the canonical merged cache lands")
    parser.add_argument("--log", default="KTH-SP2")
    parser.add_argument("--n-jobs", type=int, default=120)
    parser.add_argument("--workdir", default=None,
                        help="scratch dir (default: a fresh tempdir)")
    parser.add_argument("--telemetry-dir", default=None,
                        help="telemetry output dir (default: WORKDIR/telemetry; "
                        "kept for artifact upload)")
    parser.add_argument("--timeout", type=float, default=900.0)
    args = parser.parse_args(argv)

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-dist-smoke-")
    os.makedirs(workdir, exist_ok=True)
    telemetry_dir = args.telemetry_dir or os.path.join(workdir, "telemetry")
    queue_dir = os.path.join(workdir, "queue")
    local_cache = os.path.join(workdir, "local.jsonl")
    dist_cache = os.path.join(workdir, "dist.jsonl")
    env = {**os.environ, "PYTHONPATH": _SRC + os.pathsep + os.environ.get("PYTHONPATH", "")}
    campaign_args = [
        "--logs", args.log, "--n-jobs", str(args.n_jobs), "--replicas", "1",
    ]

    print(f"[smoke] workdir: {workdir}")
    t0 = time.monotonic()
    print("[smoke] 1/5 single-host reference campaign ...")
    subprocess.run(
        [sys.executable, "-m", "repro", "campaign", *campaign_args,
         "--cache", local_cache],
        env=env, check=True, timeout=args.timeout,
        stdout=subprocess.DEVNULL,
    )
    print(f"[smoke]     done in {time.monotonic() - t0:.0f}s")

    print("[smoke] 2/5 distributed campaign: 2 workers + 1 sacrificial ...")
    workers = [
        spawn(["worker", "--queue", queue_dir, "--worker-id", f"smoke-w{i}",
               "--poll", "0.2", "--max-idle", "120",
               "--telemetry", telemetry_dir],
              env, os.path.join(workdir, f"w{i}.log"))
        for i in (1, 2)
    ]
    victim = spawn(["worker", "--queue", queue_dir, "--worker-id", "smoke-victim",
                    "--poll", "0.2", "--max-idle", "120",
                    "--telemetry", telemetry_dir],
                   env, os.path.join(workdir, "victim.log"))
    coordinator = spawn(
        ["campaign", *campaign_args, "--cache", dist_cache,
         "--backend", "fsqueue", "--queue", queue_dir,
         "--lease-ttl", "10", "--dist-timeout", str(args.timeout),
         "--telemetry", telemetry_dir,
         "--progress-log", os.path.join(workdir, "coordinator.jsonl")],
        env, os.path.join(workdir, "coordinator.log"),
    )
    # kill the victim the moment it claims its first shard: its lease
    # must expire and the shard must be retried by a surviving worker
    victim_progress = os.path.join(queue_dir, "progress", "smoke-victim.jsonl")
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        try:
            with open(victim_progress, encoding="utf-8") as fh:
                if '"claim"' in fh.read():
                    break
        except OSError:
            pass
        if coordinator.poll() is not None:
            break  # campaign already over; nothing left to sabotage
        time.sleep(0.05)
    victim.send_signal(signal.SIGKILL)
    print("[smoke]     victim worker SIGKILLed on first claim; waiting for recovery ...")
    code = coordinator.wait(timeout=args.timeout)
    for proc in workers:
        proc.wait(timeout=120)
    if code != 0:
        print(f"[smoke] FAIL: coordinator exited {code}; see {workdir}/coordinator.log")
        sys.stdout.write(open(os.path.join(workdir, "coordinator.log")).read()[-4000:])
        return 1
    print(f"[smoke]     done in {time.monotonic() - t0:.0f}s")

    print("[smoke] 3/5 canonicalise + byte-compare ...")
    local_canon = os.path.join(workdir, "local.canonical.jsonl")
    _, local_report = merge_caches([local_cache], out_path=local_canon)
    _, dist_report = merge_caches([dist_cache], out_path=args.out)
    print(f"[smoke]     local: {local_report.describe()}")
    print(f"[smoke]     dist : {dist_report.describe()}")
    with open(local_canon, "rb") as fh:
        local_bytes = fh.read()
    with open(args.out, "rb") as fh:
        dist_bytes = fh.read()
    if local_bytes != dist_bytes:
        print("[smoke] FAIL: merged distributed cache differs from single-host run")
        return 1
    print(f"[smoke]     byte-identical: {len(dist_bytes)} bytes, "
          f"{dist_report.unique} cells")

    print("[smoke] 4/5 worker participation ...")
    shard_results = [p for p in os.listdir(os.path.join(queue_dir, "results"))]
    progress_dir = os.path.join(queue_dir, "progress")
    from repro.core.reporting import format_dist_progress, load_progress, load_progress_dir

    events = load_progress(os.path.join(workdir, "coordinator.jsonl"))
    events += load_progress_dir(progress_dir)
    print(format_dist_progress(events))

    print("[smoke] 5/5 telemetry reconciliation ...")
    from repro.obs import load_snapshots

    snapshots = load_snapshots(telemetry_dir)
    components = sorted(s["component"] for s in snapshots)
    print(f"[smoke]     snapshots: {', '.join(components) or '(none)'}")
    worker_snaps = [s for s in snapshots if s["component"].startswith("worker-")]
    if any(s["component"] == "worker-smoke-victim" for s in worker_snaps):
        print("[smoke] FAIL: SIGKILLed victim left a telemetry snapshot "
              "(snapshots must only land on clean exit)")
        return 1
    if not any(s["component"] == "campaign" for s in snapshots):
        print("[smoke] FAIL: coordinator wrote no campaign telemetry snapshot")
        return 1

    def counter(snap: dict, name: str) -> float:
        return float(snap.get("counters", {}).get(name, 0))

    claims = sum(counter(s, "worker.claims") for s in worker_snaps)
    renewals = sum(counter(s, "worker.lease.renewals") for s in worker_snaps)
    proven = sum(
        counter(s, "worker.cells.simulated") + counter(s, "worker.cells.cached")
        for s in worker_snaps
    )
    print(f"[smoke]     surviving workers: {len(worker_snaps)}, "
          f"claims={claims:.0f}, renewals={renewals:.0f}, "
          f"cells simulated+cached={proven:.0f} "
          f"(merged cache: {dist_report.unique} unique cells)")
    if len(worker_snaps) != 2:
        print("[smoke] FAIL: expected snapshots from the 2 surviving workers")
        return 1
    if claims < 1 or renewals < 1:
        print("[smoke] FAIL: workers recorded no claims or lease renewals")
        return 1
    # every merged cell was either simulated by a survivor or proven by a
    # dead attempt and re-served from its shard cache by the survivor
    # that re-claimed the shard -- so the counters must cover the cache
    if proven < dist_report.unique:
        print("[smoke] FAIL: worker telemetry accounts for fewer cells "
              "than the merged cache holds")
        return 1

    print(f"[smoke] OK ({len(shard_results)} shard result file(s)); "
          f"merged cache at {args.out}; telemetry at {telemetry_dir}")
    if args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
