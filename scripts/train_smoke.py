#!/usr/bin/env python
"""Learned-policy smoke test (CI).

Proves the repro.learn subsystem end to end, through the real CLI:

1. trains a tiny policy twice (``repro train --json``) into two separate
   stores and asserts the checkpoint digests are **byte-identical**
   (training is deterministic in its config, regardless of store);
2. evaluates the policy on a held-out seed (``repro eval --json``) and
   asserts the leaderboard contains the learned triple and that its mean
   AVEbsld **matches or beats the EASY baseline** (guaranteed by the
   trainer's best-including-init selection: the shipped policy is never
   worse than the EASY-SJBF-equivalent init);
3. runs the learned cell through a *distributed* campaign -- a JSON spec
   file with an ``rl-backfill`` scheduler, ``repro campaign --backend
   fsqueue`` coordinated over a tmp queue, drained by a ``repro worker``
   subprocess that resolves the checkpoint via ``$REPRO_CHECKPOINT_DIR``
   -- and asserts the learned cell's cached score equals the local
   evaluation exactly (cache identity is the spec digest, which embeds
   the checkpoint digest, not the store path);
4. leaves the telemetry directory (training curves included) for CI
   artifact upload.

Exit code 0 only if every assertion holds.

Usage::

    python scripts/train_smoke.py [--n-jobs 250] [--telemetry-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

LOG = "KTH-SP2"


def run_cli(args: list[str], env: dict, timeout: float) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, capture_output=True, text=True, timeout=timeout,
    )


def spawn(args: list[str], env: dict, log_path: str) -> subprocess.Popen:
    log = open(log_path, "w", encoding="utf-8")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env, stdout=log, stderr=subprocess.STDOUT,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-jobs", type=int, default=250)
    parser.add_argument("--workdir", default=None,
                        help="scratch dir (default: a fresh tempdir)")
    parser.add_argument("--telemetry-dir", default=None,
                        help="telemetry output dir (kept for artifact upload)")
    parser.add_argument("--timeout", type=float, default=900.0)
    args = parser.parse_args(argv)

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-train-smoke-")
    os.makedirs(workdir, exist_ok=True)
    telemetry_dir = args.telemetry_dir or os.path.join(workdir, "telemetry")
    env = {**os.environ,
           "PYTHONPATH": _SRC + os.pathsep + os.environ.get("PYTHONPATH", "")}
    train_args = [
        "train", "--log", LOG, "--n-jobs", str(args.n_jobs),
        "--replicas", "2", "--epochs", "2", "--episodes", "4",
        "--seed", "7", "--json",
    ]

    print(f"[train-smoke] workdir: {workdir}")
    t0 = time.monotonic()

    print("[train-smoke] 1/3 train twice, compare digests ...")
    digests = []
    for attempt in (1, 2):
        store = os.path.join(workdir, f"store{attempt}")
        proc = run_cli(
            [*train_args, "--store", store, "--telemetry", telemetry_dir],
            env, args.timeout,
        )
        if proc.returncode != 0:
            print(f"[train-smoke] FAIL: train #{attempt} exited "
                  f"{proc.returncode}\n{proc.stderr[-2000:]}")
            return 1
        report = json.loads(proc.stdout)
        digests.append(report["digest"])
        print(f"[train-smoke]     run {attempt}: digest {report['digest']} "
              f"(AVEbsld {report['train_avebsld']:.3f} trained, "
              f"{report['init_avebsld']:.3f} init, "
              f"best epoch {report['best_epoch']})")
        if report["train_avebsld"] > report["init_avebsld"]:
            print("[train-smoke] FAIL: shipped policy is worse than its init "
                  "(best-including-init selection is broken)")
            return 1
        if not os.path.exists(os.path.join(store, f"{report['digest']}.json")):
            print(f"[train-smoke] FAIL: checkpoint file missing from {store}")
            return 1
    if digests[0] != digests[1]:
        print(f"[train-smoke] FAIL: training is not deterministic: "
              f"{digests[0]} != {digests[1]}")
        return 1
    digest = digests[0]
    store = os.path.join(workdir, "store1")
    print(f"[train-smoke]     deterministic: both runs -> {digest} "
          f"({time.monotonic() - t0:.0f}s)")

    print("[train-smoke] 2/3 held-out eval vs heuristics ...")
    proc = run_cli(
        ["eval", "--policy", digest, "--store", store, "--log", LOG,
         "--n-jobs", str(args.n_jobs), "--replicas", "1", "--json",
         "--cache", os.path.join(workdir, "eval.jsonl"),
         "--telemetry", telemetry_dir],
        env, args.timeout,
    )
    if proc.returncode != 0:
        print(f"[train-smoke] FAIL: eval exited {proc.returncode}\n"
              f"{proc.stderr[-2000:]}")
        return 1
    report = json.loads(proc.stdout)
    holdout_seeds = report["seeds"]
    learned = [r for r in report["leaderboard"] if "rl-backfill" in r["label"]]
    easy = [r for r in report["leaderboard"] if r["label"].endswith("|easy")]
    if len(learned) != 1 or len(easy) != 1:
        print(f"[train-smoke] FAIL: leaderboard must carry exactly one "
              f"learned and one EASY row; got "
              f"{[r['label'] for r in report['leaderboard']]}")
        return 1
    learned_mean = learned[0]["mean_avebsld"]
    easy_mean = easy[0]["mean_avebsld"]
    for row in report["leaderboard"]:
        print(f"[train-smoke]     {row['label']}: {row['mean_avebsld']:.3f}")
    if learned_mean > easy_mean:
        print(f"[train-smoke] FAIL: learned policy ({learned_mean:.3f}) does "
              f"not match-or-beat EASY ({easy_mean:.3f}) on held-out "
              f"seed(s) {holdout_seeds}")
        return 1
    print(f"[train-smoke]     learned {learned_mean:.3f} <= easy "
          f"{easy_mean:.3f} on held-out seed(s) {holdout_seeds}")

    print("[train-smoke] 3/3 learned cell through fsqueue campaign ...")
    spec_path = os.path.join(workdir, "learned.json")
    with open(spec_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "campaign": {
                    "name": "learned-smoke",
                    "logs": [LOG],
                    "n_jobs": args.n_jobs,
                    "seeds": [holdout_seeds[0]],
                },
                "grid": [
                    {
                        "predictor": ["ave2"],
                        "corrector": ["incremental"],
                        "scheduler": [
                            {"name": "rl-backfill",
                             "params": {"policy": digest}},
                            "easy-sjbf",
                        ],
                    }
                ],
            },
            fh,
        )
    queue_dir = os.path.join(workdir, "queue")
    dist_cache = os.path.join(workdir, "dist.jsonl")
    # the worker resolves the bare digest through the environment -- the
    # spec (and so the cache identity) never names the store path
    dist_env = {**env, "REPRO_CHECKPOINT_DIR": store}
    worker = spawn(
        ["worker", "--queue", queue_dir, "--worker-id", "train-smoke-w1",
         "--poll", "0.2", "--max-idle", "120", "--telemetry", telemetry_dir],
        dist_env, os.path.join(workdir, "worker.log"),
    )
    coordinator = spawn(
        ["campaign", "--spec", spec_path, "--cache", dist_cache,
         "--backend", "fsqueue", "--queue", queue_dir,
         "--dist-timeout", str(args.timeout), "--telemetry", telemetry_dir],
        dist_env, os.path.join(workdir, "coordinator.log"),
    )
    code = coordinator.wait(timeout=args.timeout)
    worker.wait(timeout=120)
    if code != 0:
        print(f"[train-smoke] FAIL: fsqueue coordinator exited {code}")
        sys.stdout.write(
            open(os.path.join(workdir, "coordinator.log")).read()[-3000:]
        )
        return 1

    from repro.spec import expand_spec_file

    cells = {c.label: c for c in expand_spec_file(spec_path)}
    rows = [json.loads(line) for line in open(dist_cache, encoding="utf-8")]
    by_token = {r["token"]: r["value"] for r in rows if "token" in r}
    learned_cell = next(c for label, c in cells.items() if "rl-backfill" in label)
    learned_rows = [
        score for token, score in by_token.items()
        if f"spec:{learned_cell.digest()}" in token
    ]
    if len(learned_rows) != 1:
        print(f"[train-smoke] FAIL: expected exactly one learned cell in the "
              f"fsqueue cache, found {len(learned_rows)} "
              f"(tokens: {sorted(by_token)})")
        return 1
    if abs(learned_rows[0] - learned_mean) > 1e-9:
        print(f"[train-smoke] FAIL: fsqueue score {learned_rows[0]!r} != "
              f"local eval score {learned_mean!r} for the same cell")
        return 1
    print(f"[train-smoke]     fsqueue learned cell == local eval "
          f"({learned_rows[0]:.3f}); cache keys embed checkpoint digest "
          f"{digest}")

    print(f"[train-smoke] all checks passed in {time.monotonic() - t0:.0f}s "
          f"(telemetry: {telemetry_dir})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
